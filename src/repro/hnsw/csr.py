"""Compiled flat-graph search engine: CSR adjacency + epoch-tagged visits.

The reference traversal (:mod:`repro.hnsw.search`) walks
``LayeredGraph.adjacency`` — a list of lists of Python lists — and tracks
visited nodes in a Python ``set``.  That is the right structure *while the
graph is mutating* (construction inserts edges one at a time), but it is
the wall-clock bottleneck of every query once the graph is frozen: each
hop pays list building, set churn, a fancy index driven by a fresh Python
list, and the full validation prologue of :meth:`DistanceKernel.many`.

:class:`CsrGraph` is an immutable compiled snapshot of a
:class:`~repro.hnsw.graph.LayeredGraph`:

* per-layer ``indptr`` / ``indices`` int32 CSR arrays plus one contiguous
  float32 vector matrix — the canonical compiled form, and what the
  distance gathers run on;
* a per-node Python mirror of the CSR arrays (``adjacency_py``) so the
  interpreter-bound hop loop iterates machine ints directly instead of
  NumPy scalar boxing (NumPy per-element access costs more than the
  arithmetic it feeds at typical neighbour-list lengths);
* a :class:`VisitedPool` — hnswlib's VisitedListPool pattern: a reusable
  tag array whose "visited" marker is an epoch counter bumped per query,
  so no per-query allocation survives steady state.

Two traversal engines share those structures:

* :func:`greedy_descent` / :func:`search_layer` — drop-in twins of the
  reference routines that batch each hop's distance evaluations through
  :meth:`DistanceKernel.many_prechecked`.  They work for every metric and
  any graph size.
* :func:`greedy_descent_table` / :func:`search_layer_table` — the small-
  graph fast path that dominates d-HNSW query serving, where every
  sub-HNSW holds a few hundred nodes.  One *uncounted* einsum
  (:meth:`DistanceKernel.l2_table`) evaluates the query against the whole
  cluster up front; the hop loop then runs on plain Python floats with no
  per-hop NumPy dispatch at all.  Evaluations are credited to the kernel
  exactly as the traversal visits nodes, so counters match the reference
  hop-by-hop arithmetic.  Bitwise safety: NumPy's last-axis einsum
  reduction is row-independent, so the full-corpus table rows equal the
  per-hop row-subset evaluations bit for bit.  The dot-product metrics go
  through BLAS matrix-vector products whose result is not guaranteed
  stable across corpus shapes, so they always use the per-hop engine with
  the reference call shapes.

Equivalence contract (enforced by ``tests/hnsw/test_csr_equivalence.py``):
every routine here returns bit-identical ``(distance, node)`` results
*and* performs exactly the same number of
:class:`~repro.hnsw.distance.DistanceKernel` evaluations as the reference
beam search, so counters — and therefore every simulated latency in
``benchmarks/results/`` — are unchanged.  The reference implementation
stays the build-time path and the oracle.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.hnsw.distance import DistanceKernel, Metric
from repro.hnsw.graph import LayeredGraph

__all__ = ["CsrGraph", "VisitedPool", "TABLE_NODES_MAX", "greedy_descent",
           "search_layer", "greedy_descent_table", "search_layer_table"]

#: Largest graph served by the distance-table engine.  A table costs one
#: ``O(num_nodes * dim)`` einsum plus a ``tolist`` regardless of how much
#: of the graph the beam actually visits; beyond a couple thousand nodes
#: a beam with typical ``ef`` visits a small fraction of the graph and
#: the per-hop engine's on-demand gathers win.  d-HNSW sub-clusters and
#: the meta-HNSW (a few hundred nodes each) sit far below the cutoff.
TABLE_NODES_MAX = 2048


class VisitedPool:
    """A reusable epoch-tagged visited list (hnswlib's VisitedListPool).

    ``acquire()`` bumps the epoch and returns ``(tags, epoch)``; a node is
    visited iff ``tags[node] == epoch``.  Marking is a list store and
    clearing is free — no per-query ``set`` allocation, no O(n) reset.
    Tags are a plain Python list because the traversal loop reads and
    writes them one node at a time.
    """

    __slots__ = ("_tags", "_epoch")

    def __init__(self, num_nodes: int) -> None:
        self._tags: list[int] = [0] * max(num_nodes, 1)
        self._epoch = 0

    def acquire(self) -> tuple[list[int], int]:
        """Start a fresh traversal: returns the tag list and its epoch."""
        self._epoch += 1
        return self._tags, self._epoch


class CsrGraph:
    """Immutable CSR compilation of a :class:`LayeredGraph`.

    Attributes
    ----------
    vectors:
        ``(num_nodes, dim)`` float32, C-contiguous.  A private copy when
        compiled from a growable (writable) graph store; a shared
        read-only view when the source graph adopted a zero-copy decode
        buffer (``bulk_load(copy=False)``).
    indptr / indices:
        One int32 pair per layer, bottom-up.  ``indices[level]``
        concatenates the neighbour lists in node order (adjacency order is
        preserved — the equivalence contract depends on it);
        ``indptr[level]`` has ``num_nodes + 1`` entries.  Nodes absent
        from a layer simply have an empty range.
    adjacency_py:
        ``adjacency_py[level][node]`` is that node's neighbour list as
        plain Python ints — the hop loop's working form.
    """

    __slots__ = ("dim", "num_nodes", "max_level", "entry_point", "vectors",
                 "indptr", "indices", "adjacency_py", "visited_pool")

    def __init__(self, dim: int, num_nodes: int, max_level: int,
                 entry_point: int | None, vectors: np.ndarray,
                 indptr: list[np.ndarray], indices: list[np.ndarray]) -> None:
        self.dim = dim
        self.num_nodes = num_nodes
        self.max_level = max_level
        self.entry_point = entry_point
        self.vectors = vectors
        self.indptr = indptr
        self.indices = indices
        self.adjacency_py = []
        for offsets, ids in zip(indptr, indices):
            bounds = offsets.tolist()
            flat = ids.tolist()
            self.adjacency_py.append(
                [flat[bounds[node]:bounds[node + 1]]
                 for node in range(num_nodes)])
        self.visited_pool = VisitedPool(num_nodes)

    @classmethod
    def from_layered(cls, graph: LayeredGraph) -> "CsrGraph":
        """Compile a (from now on frozen) layered graph to CSR."""
        num_nodes = len(graph)
        source = graph.vectors
        if (source.dtype == np.float32 and source.flags.c_contiguous
                and not source.flags.writeable):
            # A read-only float32 store is a zero-copy adopted view over
            # remote memory (``bulk_load(copy=False)``); keep sharing it —
            # copying here would defeat the zero-copy decode path.
            vectors = source
        else:
            vectors = np.array(source, dtype=np.float32, copy=True,
                               order="C")
        indptr: list[np.ndarray] = []
        indices: list[np.ndarray] = []
        for level in range(graph.max_level + 1):
            offsets = np.zeros(num_nodes + 1, dtype=np.int32)
            flat: list[int] = []
            for node, layers in enumerate(graph.adjacency):
                if level < len(layers):
                    flat.extend(layers[level])
                offsets[node + 1] = len(flat)
            indptr.append(offsets)
            indices.append(np.asarray(flat, dtype=np.int32))
        return cls(dim=graph.dim, num_nodes=num_nodes,
                   max_level=graph.max_level, entry_point=graph.entry_point,
                   vectors=vectors, indptr=indptr, indices=indices)

    def neighbors(self, node: int, level: int) -> np.ndarray:
        """Neighbour ids of ``node`` at ``level`` (read-only view)."""
        offsets = self.indptr[level]
        return self.indices[level][offsets[node]:offsets[node + 1]]

    def table_mode(self, kernel: DistanceKernel) -> bool:
        """Whether the distance-table engine serves this graph."""
        return (kernel.metric is Metric.L2
                and self.num_nodes <= TABLE_NODES_MAX)

    def nbytes(self) -> int:
        """In-memory footprint of the compiled NumPy arrays."""
        total = self.vectors.nbytes
        for offsets, ids in zip(self.indptr, self.indices):
            total += offsets.nbytes + ids.nbytes
        return total


def greedy_descent(csr: CsrGraph, kernel: DistanceKernel, query: np.ndarray,
                   entry: int, entry_dist: float, from_level: int,
                   to_level: int) -> tuple[int, float]:
    """Compiled twin of :func:`repro.hnsw.search.greedy_descent`.

    Evaluates distances to *all* neighbours of the current node per hop
    (no visited filter), exactly like the reference, so counters agree.
    """
    current, current_dist = entry, entry_dist
    vectors = csr.vectors
    many = kernel.many_prechecked
    for level in range(from_level, to_level, -1):
        neigh = csr.adjacency_py[level]
        improved = True
        while improved:
            improved = False
            neighbor_ids = neigh[current]
            if not neighbor_ids:
                continue
            dists = many(query, vectors[neighbor_ids])
            best = int(np.argmin(dists))
            if dists[best] < current_dist:
                current = neighbor_ids[best]
                current_dist = float(dists[best])
                improved = True
    return current, current_dist


def search_layer(csr: CsrGraph, kernel: DistanceKernel, query: np.ndarray,
                 entries: list[tuple[float, int]], ef: int,
                 level: int) -> list[tuple[float, int]]:
    """Compiled twin of :func:`repro.hnsw.search.search_layer`.

    Same beam search, same heap tie-breaking (``(distance, node)`` tuples
    of Python floats/ints), same per-hop distance batching over unvisited
    neighbours in adjacency order — over the compiled flat graph with an
    epoch-tagged visited pool instead of adjacency lists and a ``set``.
    """
    if ef < 1:
        raise ValueError(f"ef must be >= 1, got {ef}")
    tags, epoch = csr.visited_pool.acquire()
    for _, node in entries:
        tags[node] = epoch
    candidates = list(entries)
    heapq.heapify(candidates)
    results = [(-dist, node) for dist, node in entries]
    heapq.heapify(results)
    while len(results) > ef:
        heapq.heappop(results)

    neigh = csr.adjacency_py[level]
    vectors = csr.vectors
    many = kernel.many_prechecked
    push = heapq.heappush
    pop = heapq.heappop
    pushpop = heapq.heappushpop
    num_results = len(results)
    # ``worst`` tracks ``-results[0][0]`` incrementally: results only
    # changes inside the accept branch, which refreshes it.
    worst = -results[0][0]
    while candidates:
        dist, node = pop(candidates)
        if dist > worst and num_results >= ef:
            break
        unvisited = []
        mark = unvisited.append
        for neighbor in neigh[node]:
            if tags[neighbor] != epoch:
                tags[neighbor] = epoch
                mark(neighbor)
        if not unvisited:
            continue
        dists = many(query, vectors[unvisited])
        for neighbor, neighbor_dist in zip(unvisited, dists.tolist()):
            if num_results < ef or neighbor_dist < worst:
                push(candidates, (neighbor_dist, neighbor))
                # push-then-pop-max fused into one sift; heap elements
                # are unique, totally ordered tuples, so every
                # observable (the root and the final content) matches
                # the reference's separate push + pop.
                if num_results >= ef:
                    pushpop(results, (-neighbor_dist, neighbor))
                else:
                    push(results, (-neighbor_dist, neighbor))
                    num_results += 1
                worst = -results[0][0]
    output = [(-negated, node) for negated, node in results]
    output.sort()
    return output


def greedy_descent_table(csr: CsrGraph, kernel: DistanceKernel,
                         table: list[float], entry: int, entry_dist: float,
                         from_level: int, to_level: int) -> tuple[int, float]:
    """Table-engine twin of :func:`greedy_descent`.

    ``table`` holds the query's distance to every node (Python floats from
    :meth:`DistanceKernel.l2_table`).  The reference evaluates *all*
    neighbours of the current node per hop — revisits included — so the
    same count is credited here per hop; the first-minimum tie-break of
    ``np.argmin`` is preserved by the strict ``<`` scan.
    """
    current, current_dist = entry, entry_dist
    evaluations = 0
    for level in range(from_level, to_level, -1):
        neigh = csr.adjacency_py[level]
        improved = True
        while improved:
            improved = False
            neighbor_ids = neigh[current]
            if not neighbor_ids:
                continue
            evaluations += len(neighbor_ids)
            best = neighbor_ids[0]
            best_dist = table[best]
            for neighbor in neighbor_ids:
                neighbor_dist = table[neighbor]
                if neighbor_dist < best_dist:
                    best = neighbor
                    best_dist = neighbor_dist
            if best_dist < current_dist:
                current = best
                current_dist = best_dist
                improved = True
    kernel.num_evaluations += evaluations
    return current, current_dist


def search_layer_table(csr: CsrGraph, kernel: DistanceKernel,
                       table: list[float], entries: list[tuple[float, int]],
                       ef: int, level: int) -> list[tuple[float, int]]:
    """Table-engine twin of :func:`search_layer`.

    The mark / evaluate / push phases of a hop fuse into one pure-Python
    loop: a node's distance is a list lookup, so no per-hop NumPy call
    remains.  One evaluation is credited per newly visited neighbour —
    exactly the rows the reference hands to ``kernel.many`` — including
    neighbours that fail the beam test, and dead pops and the termination
    pop credit nothing, matching the reference accounting.
    """
    if ef < 1:
        raise ValueError(f"ef must be >= 1, got {ef}")
    tags, epoch = csr.visited_pool.acquire()
    for _, node in entries:
        tags[node] = epoch
    candidates = list(entries)
    heapq.heapify(candidates)
    results = [(-dist, node) for dist, node in entries]
    heapq.heapify(results)
    while len(results) > ef:
        heapq.heappop(results)

    neigh = csr.adjacency_py[level]
    push = heapq.heappush
    pop = heapq.heappop
    pushpop = heapq.heappushpop
    num_results = len(results)
    evaluations = 0
    # ``worst`` tracks ``-results[0][0]`` incrementally: results only
    # changes inside the accept branches, each of which refreshes it.
    worst = -results[0][0]
    # Filling phase: the beam has fewer than ``ef`` members, so the
    # early-termination test cannot fire and every new neighbour is
    # accepted unconditionally.
    while candidates and num_results < ef:
        dist, node = pop(candidates)
        for neighbor in neigh[node]:
            if tags[neighbor] != epoch:
                tags[neighbor] = epoch
                evaluations += 1
                neighbor_dist = table[neighbor]
                if num_results < ef or neighbor_dist < worst:
                    push(candidates, (neighbor_dist, neighbor))
                    # Fused push + pop-max (see search_layer): identical
                    # observables on a heap of unique ordered tuples.
                    if num_results >= ef:
                        pushpop(results, (-neighbor_dist, neighbor))
                    else:
                        push(results, (-neighbor_dist, neighbor))
                        num_results += 1
                    worst = -results[0][0]
    # Steady phase: the beam is full (``num_results == ef`` for good),
    # so the fill checks drop out of the per-neighbour work entirely.
    while candidates:
        dist, node = pop(candidates)
        if dist > worst:
            break
        for neighbor in neigh[node]:
            if tags[neighbor] != epoch:
                tags[neighbor] = epoch
                evaluations += 1
                neighbor_dist = table[neighbor]
                if neighbor_dist < worst:
                    push(candidates, (neighbor_dist, neighbor))
                    pushpop(results, (-neighbor_dist, neighbor))
                    worst = -results[0][0]
    kernel.num_evaluations += evaluations
    output = [(-negated, node) for negated, node in results]
    output.sort()
    return output
