"""Queue-pair verbs: state machine, time charging, stats recording."""

from __future__ import annotations

import pytest

from repro.errors import QpStateError
from repro.rdma import (
    CostModel,
    MemoryNode,
    QpState,
    QueuePair,
    ReadDescriptor,
    SimClock,
)


@pytest.fixture()
def setup():
    node = MemoryNode()
    region = node.register(4096)
    clock = SimClock()
    qp = QueuePair(node, clock, CostModel(doorbell_limit=4))
    qp.connect()
    return node, region, clock, qp


class TestStateMachine:
    def test_verb_before_connect_rejected(self):
        node = MemoryNode()
        region = node.register(64)
        qp = QueuePair(node, SimClock(), CostModel())
        with pytest.raises(QpStateError):
            qp.post_read(region.rkey, region.base_addr, 8)

    def test_verb_after_close_rejected(self, setup):
        _, region, _, qp = setup
        qp.close()
        with pytest.raises(QpStateError):
            qp.post_read(region.rkey, region.base_addr, 8)

    def test_reconnect_after_close_rejected(self, setup):
        _, _, _, qp = setup
        qp.close()
        with pytest.raises(QpStateError):
            qp.connect()

    def test_states_transition(self):
        qp = QueuePair(MemoryNode(), SimClock(), CostModel())
        assert qp.state is QpState.RESET
        qp.connect()
        assert qp.state is QpState.READY
        qp.close()
        assert qp.state is QpState.CLOSED


class TestVerbs:
    def test_write_then_read(self, setup):
        _, region, _, qp = setup
        qp.post_write(region.rkey, region.base_addr, b"abcdef")
        assert qp.post_read(region.rkey, region.base_addr, 6) == b"abcdef"

    def test_read_advances_clock(self, setup):
        _, region, clock, qp = setup
        model = qp.cost_model
        qp.post_read(region.rkey, region.base_addr, 1000)
        assert clock.now_us == pytest.approx(model.read_us(1000))

    def test_faa_roundtrip(self, setup):
        _, region, _, qp = setup
        assert qp.post_faa(region.rkey, region.base_addr, 7) == 0
        assert qp.post_faa(region.rkey, region.base_addr, 1) == 7

    def test_cas_roundtrip(self, setup):
        _, region, _, qp = setup
        assert qp.post_cas(region.rkey, region.base_addr, 0, 5) == 0
        assert qp.post_cas(region.rkey, region.base_addr, 5, 9) == 5

    def test_stats_record_each_verb(self, setup):
        _, region, _, qp = setup
        qp.post_write(region.rkey, region.base_addr, b"xy")
        qp.post_read(region.rkey, region.base_addr, 2)
        qp.post_faa(region.rkey, region.base_addr + 8, 1)
        stats = qp.stats
        assert stats.write_ops == 1
        assert stats.read_ops == 1
        assert stats.atomic_ops == 1
        assert stats.round_trips == 3
        assert stats.bytes_written == 2
        assert stats.bytes_read == 2
        assert stats.network_time_us > 0


class TestDoorbellBatch:
    def test_returns_payloads_in_order(self, setup):
        _, region, _, qp = setup
        qp.post_write(region.rkey, region.base_addr, b"AA")
        qp.post_write(region.rkey, region.base_addr + 100, b"BB")
        payloads = qp.post_read_batch([
            ReadDescriptor(region.rkey, region.base_addr, 2),
            ReadDescriptor(region.rkey, region.base_addr + 100, 2),
        ])
        assert payloads == [b"AA", b"BB"]

    def test_empty_batch_noop(self, setup):
        _, _, clock, qp = setup
        assert qp.post_read_batch([]) == []
        assert clock.now_us == 0.0
        assert qp.stats.round_trips == 0

    def test_one_ring_counts_one_round_trip(self, setup):
        _, region, _, qp = setup
        descriptors = [ReadDescriptor(region.rkey, region.base_addr + i, 1)
                       for i in range(4)]  # limit is 4
        qp.post_read_batch(descriptors)
        assert qp.stats.round_trips == 1
        assert qp.stats.read_ops == 4
        assert qp.stats.doorbell_batches == 1

    def test_oversized_batch_splits_rings(self, setup):
        _, region, _, qp = setup
        descriptors = [ReadDescriptor(region.rkey, region.base_addr + i, 1)
                       for i in range(9)]  # limit 4 -> 3 rings
        qp.post_read_batch(descriptors)
        assert qp.stats.round_trips == 3

    def test_doorbell_cheaper_than_individual(self, setup):
        node, region, _, qp = setup
        descriptors = [ReadDescriptor(region.rkey, region.base_addr + 64 * i,
                                      64) for i in range(4)]
        qp.post_read_batch(descriptors)
        batched_time = qp.stats.network_time_us

        other = QueuePair(node, SimClock(), qp.cost_model)
        other.connect()
        for descriptor in descriptors:
            other.post_read(descriptor.rkey, descriptor.addr,
                            descriptor.length)
        assert batched_time < other.stats.network_time_us


class TestAsyncReadBatch:
    def descriptors(self, region, count=3, size=64):
        return [ReadDescriptor(region.rkey, region.base_addr + size * i,
                               size) for i in range(count)]

    def test_issue_does_not_advance_clock(self, setup):
        _, region, clock, qp = setup
        pending = qp.post_read_batch_async(self.descriptors(region))
        assert clock.now_us == 0.0
        assert pending.elapsed_us > 0.0
        assert pending.completes_at_us == pytest.approx(pending.elapsed_us)

    def test_poll_returns_payloads_in_order(self, setup):
        _, region, _, qp = setup
        qp.post_write(region.rkey, region.base_addr, b"AA")
        qp.post_write(region.rkey, region.base_addr + 100, b"BB")
        pending = qp.post_read_batch_async([
            ReadDescriptor(region.rkey, region.base_addr, 2),
            ReadDescriptor(region.rkey, region.base_addr + 100, 2),
        ])
        assert qp.poll_cq(pending) == [b"AA", b"BB"]

    def test_payloads_snapshot_at_issue(self, setup):
        """One-sided READs observe remote memory as of the issue; a write
        landing between issue and poll must not be visible."""
        _, region, _, qp = setup
        qp.post_write(region.rkey, region.base_addr, b"old")
        pending = qp.post_read_batch_async(
            [ReadDescriptor(region.rkey, region.base_addr, 3)])
        qp.post_write(region.rkey, region.base_addr, b"new")
        assert qp.poll_cq(pending) == [b"old"]

    def test_immediate_poll_charges_full_wire_time(self, setup):
        _, region, clock, qp = setup
        pending = qp.post_read_batch_async(self.descriptors(region))
        qp.poll_cq(pending)
        assert clock.now_us == pytest.approx(pending.elapsed_us)
        assert qp.stats.network_time_us == pytest.approx(pending.elapsed_us)
        assert qp.stats.overlapped_time_us == 0.0

    def test_compute_between_issue_and_poll_is_hidden(self, setup):
        _, region, clock, qp = setup
        pending = qp.post_read_batch_async(self.descriptors(region))
        overlap = pending.elapsed_us / 2
        clock.advance(overlap)                      # simulated compute
        qp.poll_cq(pending)
        assert clock.now_us == pytest.approx(pending.elapsed_us)
        assert qp.stats.network_time_us == pytest.approx(
            pending.elapsed_us - overlap)
        assert qp.stats.overlapped_time_us == pytest.approx(overlap)

    def test_fully_hidden_fetch_charges_nothing(self, setup):
        _, region, clock, qp = setup
        pending = qp.post_read_batch_async(self.descriptors(region))
        clock.advance(pending.elapsed_us * 3)       # compute dominates
        before = clock.now_us
        qp.poll_cq(pending)
        assert clock.now_us == before               # no exposed wait
        assert qp.stats.network_time_us == 0.0
        assert qp.stats.overlapped_time_us == pytest.approx(
            pending.elapsed_us)

    def test_exposed_plus_hidden_is_serial_cost(self, setup):
        """Whatever the overlap, exposed + hidden reconstructs exactly the
        time a synchronous doorbell batch would have charged."""
        node, region, clock, qp = setup
        sync = QueuePair(node, SimClock(), qp.cost_model)
        sync.connect()
        sync.post_read_batch(self.descriptors(region))
        pending = qp.post_read_batch_async(self.descriptors(region))
        clock.advance(1.0)
        qp.poll_cq(pending)
        assert (qp.stats.network_time_us + qp.stats.overlapped_time_us
                == pytest.approx(sync.stats.network_time_us))

    def test_stats_count_batch_like_sync_doorbell(self, setup):
        _, region, _, qp = setup
        pending = qp.post_read_batch_async(self.descriptors(region, count=9))
        qp.poll_cq(pending)
        assert qp.stats.read_ops == 9
        assert qp.stats.round_trips == 3            # doorbell_limit=4
        assert qp.stats.doorbell_batches == 1
        assert qp.stats.bytes_read == 9 * 64

    def test_non_doorbell_costs_serial_reads(self, setup):
        _, region, _, qp = setup
        descriptors = self.descriptors(region, count=4)
        pending = qp.post_read_batch_async(descriptors, doorbell=False)
        expected = sum(qp.cost_model.read_us(d.length) for d in descriptors)
        assert pending.elapsed_us == pytest.approx(expected)
        assert pending.rings == 4
        qp.poll_cq(pending)
        assert qp.stats.doorbell_batches == 0
        assert qp.stats.round_trips == 4

    def test_double_poll_raises(self, setup):
        _, region, _, qp = setup
        pending = qp.post_read_batch_async(self.descriptors(region))
        qp.poll_cq(pending)
        with pytest.raises(QpStateError, match="twice"):
            qp.poll_cq(pending)

    def test_empty_batch_is_free(self, setup):
        _, _, clock, qp = setup
        pending = qp.post_read_batch_async([])
        assert qp.poll_cq(pending) == []
        assert clock.now_us == 0.0
        assert qp.stats.round_trips == 0

    def test_sync_read_queues_behind_async(self, setup):
        """A blocking verb issued while an async batch occupies the wire
        waits for the channel, exactly like a second WQE on one NIC."""
        _, region, clock, qp = setup
        pending = qp.post_read_batch_async(self.descriptors(region))
        read_cost = qp.cost_model.read_us(8)
        qp.post_read(region.rkey, region.base_addr, 8)
        assert clock.now_us == pytest.approx(
            pending.elapsed_us + read_cost)
        # The async batch then completes under the sync verb's wait.
        qp.poll_cq(pending)
        assert qp.stats.overlapped_time_us == pytest.approx(
            pending.elapsed_us)

    def test_verbs_require_ready_state(self, setup):
        _, region, _, qp = setup
        pending = qp.post_read_batch_async(self.descriptors(region))
        qp.close()
        with pytest.raises(QpStateError):
            qp.post_read_batch_async(self.descriptors(region))
        with pytest.raises(QpStateError):
            qp.poll_cq(pending)
