"""Wall-clock + simulated-latency benchmark of the pipelined serving engine.

PR 4 turned ``DHnswClient._execute_plan`` into a double-buffered wave
executor with a multi-worker cluster-search phase and vectorized top-k
merging.  This harness runs the acceptance scenario (20k vectors, batch
256, efSearch 32) across the serving configurations:

* ``serial``             — pipeline off, 1 worker (the pre-PR-4 engine),
* ``pipelined``          — pipeline on, 1 worker,
* ``workers4_thread``    — pipeline off, 4 thread workers,
* ``workers4_process``   — pipeline off, 4 process workers,
* ``pipelined_workers4`` — pipeline on, 4 thread workers,

and asserts the PR's acceptance criteria:

* every configuration returns bit-identical results and identical
  ``sub_evals`` (worker count and scheduling never change answers);
* with pipelining on, the simulated end-to-end batch latency improves
  over the serial schedule by at least the retained ``_overlap_saved``
  oracle, and the measured hidden wire time matches that oracle;
* with ``search_workers=4`` on the process executor, the sub-HNSW
  compute phase is at least 2x faster in wall-clock than 1 worker —
  enforced only when the host has at least 2 CPUs (``cpu_count`` is
  recorded either way; a single-core runner cannot speed anything up).

Any violated criterion exits non-zero, so the CI smoke job doubles as a
regression gate.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_serve.py           # full
    PYTHONPATH=src python benchmarks/perf/bench_serve.py --quick   # CI

Writes ``benchmarks/perf/BENCH_serve.json`` (override with ``--output``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import time

import numpy as np

from repro.cluster import Deployment
from repro.core import DHnswClient, DHnswConfig
from repro.datasets import sift_like

DEFAULT_OUTPUT = pathlib.Path(__file__).parent / "BENCH_serve.json"

#: The acceptance scenario (full) and a CI-sized shrink (quick).
SCALES = {
    "full": dict(num_vectors=20000, num_queries=256, num_clusters=100,
                 batch_size=256, reps=5),
    "quick": dict(num_vectors=2000, num_queries=64, num_clusters=20,
                  batch_size=64, reps=3),
}

#: (label, config overrides) for every serving configuration measured.
CONFIGS = [
    ("serial", {}),
    ("pipelined", {"pipeline_waves": True}),
    ("workers4_thread", {"search_workers": 4}),
    ("workers4_process", {"search_workers": 4,
                          "search_executor": "process"}),
    ("pipelined_workers4", {"pipeline_waves": True, "search_workers": 4}),
]


def check(condition: bool, what: str) -> None:
    if not condition:
        raise SystemExit(f"ACCEPTANCE FAILURE: {what}")


def run_config(deployment, queries, overrides, reps):
    """Measure one serving configuration.

    Every configuration executes the identical sequence (one warm-up
    batch, then ``reps`` timed batches) so cache evolution — and with it
    every simulated number — is comparable across configurations.
    Returns (section dict, last BatchResult).
    """
    config = deployment.config.replace(cache_fraction=0.10, **overrides)
    client = DHnswClient(deployment.layout, deployment.meta, config,
                         cost_model=deployment.cost_model)
    try:
        client.search_batch(queries, k=10, ef_search=32)  # warm-up
        wall = compute_wall = float("inf")
        batch = None
        for _ in range(reps):
            compute_before = client.node.wall_compute_s
            start = time.perf_counter()
            batch = client.search_batch(queries, k=10, ef_search=32)
            wall = min(wall, time.perf_counter() - start)
            compute_wall = min(compute_wall,
                               client.node.wall_compute_s - compute_before)
        section = {
            "pipeline_waves": bool(config.pipeline_waves),
            "search_workers": config.search_workers,
            "search_executor": config.search_executor,
            "wall_seconds": round(wall, 4),
            "compute_wall_seconds": round(compute_wall, 4),
            "wall_qps": round(len(queries) / wall, 1),
            "simulated": {
                "total_us": round(batch.breakdown.total_us, 3),
                "network_us": round(batch.breakdown.network_us, 3),
                "sub_hnsw_us": round(batch.breakdown.sub_hnsw_us, 3),
                "latency_per_query_us": round(batch.latency_per_query_us,
                                              4),
                "overlap_saved_us": round(batch.overlap_saved_us, 3),
                "overlap_oracle_us": round(batch.overlap_oracle_us, 3),
                "waves": batch.waves,
            },
            "sub_evals": batch.sub_evals,
            "cache_misses": batch.cache_misses,
            "cache_evictions": batch.cache_evictions,
            "pipeline_executed": batch.pipeline_executed,
        }
        return section, batch
    finally:
        client.close()


def assert_acceptance(sections, batches, cpu_count) -> dict:
    """The PR-4 acceptance gates; returns the summary block."""
    reference = batches["serial"]
    for label, batch in batches.items():
        check(all(np.array_equal(a.ids, b.ids)
                  and np.array_equal(a.distances, b.distances)
                  for a, b in zip(reference.results, batch.results)),
              f"results of '{label}' differ from the serial engine")
        check(batch.sub_evals == reference.sub_evals,
              f"'{label}' changed the distance-evaluation count")

    piped = batches["pipelined"]
    check(piped.pipeline_executed, "pipelined run never entered the "
                                   "double-buffered executor")
    check(piped.waves >= 2, "scenario produced a single wave — nothing "
                            "to overlap; enlarge the corpus")
    improvement = (reference.breakdown.total_us
                   - piped.breakdown.total_us)
    oracle = piped.overlap_oracle_us
    check(improvement >= oracle * (1 - 1e-6) - 1e-6,
          f"simulated improvement {improvement:.3f}us fell short of the "
          f"overlap oracle {oracle:.3f}us")
    check(abs(piped.overlap_saved_us - oracle) <= max(1e-6, 1e-9 * oracle),
          "measured hidden wire time drifted from the oracle")
    check(piped.breakdown.network_us < reference.breakdown.network_us,
          "pipelining did not shrink the exposed network bucket")

    workers = sections["workers4_process"]["compute_wall_seconds"]
    single = sections["serial"]["compute_wall_seconds"]
    speedup = single / workers if workers > 0 else float("inf")
    speedup_enforced = cpu_count >= 2
    if speedup_enforced:
        check(speedup >= 2.0,
              f"4 process workers gave only {speedup:.2f}x compute-phase "
              f"speedup on a {cpu_count}-CPU host")
    return {
        "simulated_improvement_us": round(improvement, 3),
        "overlap_oracle_us": round(oracle, 3),
        "compute_phase_speedup_workers4": round(speedup, 2),
        "speedup_gate_enforced": speedup_enforced,
        "bit_identical": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (small build, fewer reps)")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    mode = "quick" if args.quick else "full"
    scale = SCALES[mode]
    cpu_count = os.cpu_count() or 1

    build_start = time.perf_counter()
    dataset = sift_like(num_vectors=scale["num_vectors"],
                        num_queries=scale["num_queries"],
                        num_clusters=scale["num_clusters"],
                        gt_k=10, seed=42)
    config = DHnswConfig(nprobe=4, ef_meta=32, cache_fraction=0.10,
                         batch_size=scale["batch_size"],
                         overflow_capacity_records=64, seed=42)
    deployment = Deployment(dataset.vectors, config,
                            simulate_link_contention=False)
    build_seconds = time.perf_counter() - build_start
    queries = dataset.queries[:scale["batch_size"]]

    sections = {}
    batches = {}
    for label, overrides in CONFIGS:
        sections[label], batches[label] = run_config(
            deployment, queries, overrides, scale["reps"])

    acceptance = assert_acceptance(sections, batches, cpu_count)
    report = {
        "benchmark": "pipelined serving engine vs serial",
        "mode": mode,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": cpu_count,
        },
        "dataset": {
            "kind": "sift_like",
            "num_vectors": scale["num_vectors"],
            "dim": dataset.vectors.shape[1],
            "num_clusters": scale["num_clusters"],
            "batch_size": scale["batch_size"],
            "nprobe": config.nprobe,
            "seed": 42,
        },
        "build_seconds": round(build_seconds, 1),
        "reps_best_of": scale["reps"],
        "sections": sections,
        "acceptance": acceptance,
    }

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({"sections": sections, "acceptance": acceptance},
                     indent=2))
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
