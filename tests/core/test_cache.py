"""Cluster LRU cache behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cache import CachedCluster, ClusterCache
from repro.errors import ConfigError
from repro.hnsw import HnswIndex, HnswParams


def make_entry(cluster_id: int, nbytes: int = 100) -> CachedCluster:
    return CachedCluster(cluster_id=cluster_id,
                         index=HnswIndex(4, HnswParams(m=4)),
                         overflow=[], overflow_tail=0, metadata_version=1,
                         nbytes=nbytes)


class TestLruSemantics:
    def test_put_get(self):
        cache = ClusterCache(2)
        cache.put(make_entry(1))
        assert cache.get(1).cluster_id == 1

    def test_miss_returns_none_and_counts(self):
        cache = ClusterCache(2)
        assert cache.get(7) is None
        assert cache.misses == 1

    def test_eviction_order_is_lru(self):
        cache = ClusterCache(2)
        cache.put(make_entry(1))
        cache.put(make_entry(2))
        cache.get(1)            # 1 is now most recent
        evicted = cache.put(make_entry(3))
        assert [e.cluster_id for e in evicted] == [2]
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_peek_does_not_touch_recency(self):
        cache = ClusterCache(2)
        cache.put(make_entry(1))
        cache.put(make_entry(2))
        cache.peek(1)           # must NOT refresh 1
        evicted = cache.put(make_entry(3))
        assert [e.cluster_id for e in evicted] == [1]

    def test_peek_does_not_count(self):
        cache = ClusterCache(2)
        cache.peek(9)
        assert cache.misses == 0 and cache.hits == 0

    def test_replace_same_id_does_not_evict_others(self):
        cache = ClusterCache(2)
        cache.put(make_entry(1))
        cache.put(make_entry(2))
        evicted = cache.put(make_entry(1, nbytes=999))
        assert evicted == []
        assert cache.get(1).nbytes == 999

    def test_pop_lru(self):
        cache = ClusterCache(3)
        cache.put(make_entry(1))
        cache.put(make_entry(2))
        victim = cache.pop_lru()
        assert victim.cluster_id == 1
        assert cache.pop_lru().cluster_id == 2
        assert cache.pop_lru() is None

    def test_capacity_one(self):
        cache = ClusterCache(1)
        cache.put(make_entry(1))
        evicted = cache.put(make_entry(2))
        assert [e.cluster_id for e in evicted] == [1]
        assert len(cache) == 1


class TestBookkeeping:
    def test_cached_bytes(self):
        cache = ClusterCache(3)
        cache.put(make_entry(1, 10))
        cache.put(make_entry(2, 30))
        assert cache.cached_bytes == 40

    def test_cached_bytes_matches_brute_force_sum(self):
        """The O(1) running total tracks the true sum through every
        mutating operation (put/replace/evict/pop/invalidate/clear)."""
        rng = np.random.default_rng(7)
        cache = ClusterCache(5)
        for step in range(300):
            op = rng.integers(0, 5)
            cid = int(rng.integers(0, 12))
            if op <= 1:
                cache.put(make_entry(cid, int(rng.integers(1, 500))))
            elif op == 2:
                cache.pop_lru()
            elif op == 3:
                cache.invalidate(cid)
            else:
                cache.get(cid)
            if step % 50 == 49:
                cache.invalidate_all()
            brute_force = sum(entry.nbytes
                              for entry in cache._entries.values())
            assert cache.cached_bytes == brute_force

    def test_invalidate(self):
        cache = ClusterCache(2)
        cache.put(make_entry(1))
        assert cache.invalidate(1)
        assert not cache.invalidate(1)
        assert cache.invalidations == 1

    def test_invalidate_all(self):
        cache = ClusterCache(4)
        cache.put(make_entry(1))
        cache.put(make_entry(2))
        cache.invalidate_all()
        assert len(cache) == 0
        assert cache.invalidations == 2

    def test_put_of_absent_key_counts_the_fetch_as_miss(self):
        cache = ClusterCache(2)
        cache.put(make_entry(1))
        assert cache.misses == 1
        # Replacing a resident key is not a miss.
        cache.put(make_entry(1, nbytes=7))
        assert cache.misses == 1

    def test_put_count_miss_false_for_refetch_after_get(self):
        """The refetch path: a failed get already counted the miss, so the
        subsequent put must not count it again."""
        cache = ClusterCache(2)
        assert cache.get(3) is None
        cache.put(make_entry(3), count_miss=False)
        assert cache.misses == 1

    def test_evictions_counted_inside_put(self):
        cache = ClusterCache(1)
        cache.put(make_entry(1))
        cache.put(make_entry(2))
        assert cache.evictions == 1

    def test_counters_reads_atomically(self):
        cache = ClusterCache(2)
        cache.put(make_entry(1))
        cache.get(1)
        assert cache.counters() == (1, 1, 0)

    def test_hit_rate(self):
        cache = ClusterCache(2)
        cache.put(make_entry(1))    # miss (the fetch that filled it)
        cache.get(1)                # hit
        cache.get(2)                # miss
        assert cache.hit_rate() == pytest.approx(1.0 / 3.0)

    def test_hit_rate_empty(self):
        assert ClusterCache(1).hit_rate() == 0.0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            ClusterCache(0)
