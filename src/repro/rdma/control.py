"""The control path: two-sided RPC to the memory node.

d-HNSW's data path is one-sided (the memory node's CPU never touches a
query), but §3 still gives memory instances a job: "handling lightweight
memory registration tasks".  This module models that control path as a
classic SEND/RECV RPC service:

* :class:`MemoryDaemon` — the service running on the memory node:
  region allocation / deregistration / lookup and liveness pings;
* :class:`ControlClient` — the compute-side stub, charging simulated
  time (one round trip + payload serialization + the weak server CPU)
  and counting control-path traffic separately from data-path verbs.

Control messages are JSON over the simulated fabric — the control path
is latency-insensitive, so clarity beats compactness here.
"""

from __future__ import annotations

import dataclasses
import json

from repro.errors import ProtectionError, RdmaError
from repro.rdma.clock import SimClock
from repro.rdma.memory_node import MemoryNode
from repro.rdma.network import CostModel

__all__ = ["ControlClient", "ControlStats", "MemoryDaemon", "RpcError"]

#: The paper's memory instances have "extremely weak computational
#: power"; every RPC op charges this much server CPU.
_SERVER_CPU_US = 5.0


class RpcError(RdmaError):
    """The daemon rejected a control request."""


@dataclasses.dataclass
class ControlStats:
    """Control-path accounting, separate from data-path RdmaStats."""

    requests: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    time_us: float = 0.0


class MemoryDaemon:
    """Control-plane service owned by a memory node."""

    def __init__(self, memory_node: MemoryNode) -> None:
        self.memory_node = memory_node
        self.requests_served = 0
        self.cpu_time_us = 0.0

    # ------------------------------------------------------------------
    def handle(self, request: bytes) -> bytes:
        """Dispatch one serialized request; returns the serialized reply.

        Unknown ops and malformed requests produce an error reply rather
        than an exception — a remote daemon cannot raise into its client.
        """
        self.requests_served += 1
        self.cpu_time_us += _SERVER_CPU_US
        try:
            message = json.loads(request.decode("utf-8"))
            op = message["op"]
        except (ValueError, KeyError, UnicodeDecodeError):
            return self._error("malformed request")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return self._error(f"unknown op {op!r}")
        try:
            return json.dumps({"ok": True,
                               "result": handler(message)}).encode("utf-8")
        except (ProtectionError, RpcError, ValueError) as error:
            return self._error(str(error))

    @staticmethod
    def _error(message: str) -> bytes:
        return json.dumps({"ok": False, "error": message}).encode("utf-8")

    # ------------------------------------------------------------------
    def _op_ping(self, message: dict) -> dict:
        return {"node": self.memory_node.name}

    def _op_alloc_region(self, message: dict) -> dict:
        length = int(message["length"])
        region = self.memory_node.register(length)
        return {"rkey": region.rkey, "base_addr": region.base_addr,
                "length": region.length}

    def _op_region_info(self, message: dict) -> dict:
        rkey = int(message["rkey"])
        region = self.memory_node.get_region(rkey)
        return {"rkey": rkey, "base_addr": region.base_addr,
                "length": region.length}

    def _op_dereg_region(self, message: dict) -> dict:
        self.memory_node.deregister(int(message["rkey"]))
        return {}

    def _op_stats(self, message: dict) -> dict:
        return {"registered_bytes": self.memory_node.registered_bytes,
                "requests_served": self.requests_served}


class ControlClient:
    """Compute-side stub for the memory daemon."""

    def __init__(self, daemon: MemoryDaemon, clock: SimClock,
                 cost_model: CostModel) -> None:
        self.daemon = daemon
        self.clock = clock
        self.cost_model = cost_model
        self.stats = ControlStats()

    # ------------------------------------------------------------------
    def call(self, op: str, **args: object) -> dict:
        """Issue one RPC; returns the result dict or raises RpcError."""
        request = json.dumps({"op": op, **args}).encode("utf-8")
        reply = self.daemon.handle(request)
        elapsed = (self.cost_model.base_rtt_us
                   + self.cost_model.transfer_us(len(request) + len(reply))
                   + _SERVER_CPU_US)
        self.clock.advance(elapsed)
        self.stats.requests += 1
        self.stats.bytes_sent += len(request)
        self.stats.bytes_received += len(reply)
        self.stats.time_us += elapsed
        decoded = json.loads(reply.decode("utf-8"))
        if not decoded.get("ok"):
            raise RpcError(decoded.get("error", "unknown control error"))
        return decoded["result"]

    # Typed convenience wrappers ---------------------------------------
    def ping(self) -> str:
        """Liveness check; returns the memory node's name."""
        return str(self.call("ping")["node"])

    def alloc_region(self, length: int) -> tuple[int, int, int]:
        """Ask the daemon to register a region; returns
        ``(rkey, base_addr, length)``."""
        result = self.call("alloc_region", length=length)
        return (int(result["rkey"]), int(result["base_addr"]),
                int(result["length"]))

    def region_info(self, rkey: int) -> tuple[int, int]:
        """Look up a region; returns ``(base_addr, length)``."""
        result = self.call("region_info", rkey=rkey)
        return int(result["base_addr"]), int(result["length"])

    def dereg_region(self, rkey: int) -> None:
        """Deregister a region."""
        self.call("dereg_region", rkey=rkey)
