"""Token-bucket admission and deficit-round-robin fairness units."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.frontdoor import (AdmissionController, DeficitRoundRobin,
                             Request, TenantPolicy, TokenBucket)


def make_request(request_id: int, tenant: str, arrival_us: float,
                 slo_us: float = 50_000.0) -> Request:
    return Request(request_id=request_id, tenant=tenant,
                   query=np.zeros(4, dtype=np.float32), k=5,
                   arrival_us=arrival_us, slo_us=slo_us)


class TestTokenBucket:
    def test_unlimited_rate_admits_everything(self):
        bucket = TokenBucket(rate_qps=None, burst=1)
        assert all(bucket.admit(t) for t in (0.0, 0.0, 1.0, 1.0))

    def test_burst_then_dry(self):
        bucket = TokenBucket(rate_qps=1000.0, burst=3)
        assert [bucket.admit(0.0) for _ in range(4)] == [
            True, True, True, False]

    def test_lazy_refill_at_rate(self):
        # 1000 qps = one token per 1000 us.
        bucket = TokenBucket(rate_qps=1000.0, burst=1)
        assert bucket.admit(0.0)
        assert not bucket.admit(100.0)
        assert bucket.admit(1100.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_qps=1000.0, burst=2)
        bucket.admit(0.0)
        bucket.admit(0.0)
        # A long idle gap refills to the cap, not beyond it.
        assert bucket.admit(1e9)
        assert bucket.admit(1e9)
        assert not bucket.admit(1e9)

    def test_validation(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate_qps=0.0, burst=1)
        with pytest.raises(ConfigError):
            TokenBucket(rate_qps=100.0, burst=0)


class TestTenantPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"weight": 0.0},
        {"rate_qps": -1.0},
        {"burst": 0},
        {"slo_us": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            TenantPolicy(**kwargs)


class TestAdmissionController:
    def test_per_tenant_buckets_and_ledgers(self):
        controller = AdmissionController(
            {"limited": TenantPolicy(rate_qps=1000.0, burst=1)},
            default_rate_qps=None, default_burst=32)
        assert controller.admit(make_request(0, "limited", 0.0))
        assert not controller.admit(make_request(1, "limited", 0.0))
        # The unlisted tenant gets the (unlimited) default bucket.
        assert controller.admit(make_request(2, "other", 0.0))
        assert controller.admitted == {"limited": 1, "other": 1}
        assert controller.shed == {"limited": 1}

    def test_admission_is_a_function_of_arrivals_only(self):
        def run() -> list[bool]:
            controller = AdmissionController(
                {}, default_rate_qps=2000.0, default_burst=2)
            return [controller.admit(make_request(i, "t", i * 300.0))
                    for i in range(10)]

        assert run() == run()


class TestDeficitRoundRobin:
    def drr(self, quantum: int = 4, policies=None,
            default_weight: float = 1.0) -> DeficitRoundRobin:
        return DeficitRoundRobin(quantum, policies or {}, default_weight)

    def fill(self, drr: DeficitRoundRobin, tenant: str, count: int,
             first_id: int = 0) -> None:
        for i in range(count):
            drr.push(make_request(first_id + i, tenant, float(i)))

    def test_fifo_within_tenant(self):
        drr = self.drr()
        self.fill(drr, "a", 3)
        taken = drr.take(3)
        assert [r.request_id for r in taken] == [0, 1, 2]
        assert drr.pending == 0

    def test_weighted_shares_under_backlog(self):
        drr = self.drr(quantum=2,
                       policies={"heavy": TenantPolicy(weight=3.0)})
        self.fill(drr, "heavy", 60, first_id=0)
        self.fill(drr, "light", 60, first_id=100)
        taken = drr.take(40)
        heavy = sum(1 for r in taken if r.tenant == "heavy")
        # quantum x weight = 6 vs 2 per round: a 3:1 split.
        assert heavy == 30
        assert len(taken) == 40

    def test_idle_tenant_forfeits_share(self):
        drr = self.drr(quantum=1)
        self.fill(drr, "busy", 10)
        # No other tenant queued: busy gets every slot.
        assert len(drr.take(10)) == 10

    def test_cursor_persists_across_takes(self):
        drr = self.drr(quantum=1)
        self.fill(drr, "a", 4, first_id=0)
        self.fill(drr, "b", 4, first_id=10)
        first = [r.tenant for r in drr.take(2)]
        second = [r.tenant for r in drr.take(2)]
        # The ring resumes after a, b rather than restarting at a.
        assert first == ["a", "b"]
        assert second == ["a", "b"]

    def test_drained_queue_resets_deficit(self):
        drr = self.drr(quantum=8)
        self.fill(drr, "a", 1)
        drr.take(8)
        # A fresh backlog must not inherit the unused deficit.
        assert drr._deficit["a"] == 0.0

    def test_take_more_than_pending(self):
        drr = self.drr()
        self.fill(drr, "a", 2)
        assert len(drr.take(64)) == 2
        assert drr.take(64) == []

    def test_fractional_weight_still_progresses(self):
        drr = self.drr(quantum=1,
                       policies={"slow": TenantPolicy(weight=0.1)})
        self.fill(drr, "slow", 3)
        # 0.1 deficit per visit: needs sweeps, but must terminate.
        assert len(drr.take(3)) == 3

    def test_oldest_arrival(self):
        drr = self.drr()
        assert drr.oldest_arrival_us() is None
        drr.push(make_request(0, "a", 500.0))
        drr.push(make_request(1, "b", 200.0))
        assert drr.oldest_arrival_us() == 200.0

    def test_drain(self):
        drr = self.drr()
        self.fill(drr, "a", 2)
        self.fill(drr, "b", 1, first_id=10)
        drained = list(drr.drain())
        assert len(drained) == 3
        assert drr.pending == 0

    def test_quantum_validation(self):
        with pytest.raises(ConfigError):
            self.drr(quantum=0)
