"""Readers/writers for the TEXMEX ``.fvecs`` / ``.ivecs`` formats.

SIFT1M and GIST1M are distributed in these formats: each vector is stored
as a little-endian i32 dimensionality followed by that many f32 (fvecs) or
i32 (ivecs) components.  With these loaders the real corpora drop straight
into the benchmark harness in place of the synthetic stand-ins.
"""

from __future__ import annotations

import os
import struct

import numpy as np

from repro.errors import SerializationError

__all__ = ["read_fvecs", "write_fvecs", "read_ivecs", "write_ivecs"]


def _read_vecs(path: "str | os.PathLike[str]", dtype: np.dtype,
               max_vectors: int | None) -> np.ndarray:
    with open(path, "rb") as handle:
        raw = handle.read()
    if not raw:
        return np.empty((0, 0), dtype=dtype)
    if len(raw) < 4:
        raise SerializationError(f"{path}: truncated header")
    (dim,) = struct.unpack_from("<i", raw, 0)
    if dim <= 0:
        raise SerializationError(f"{path}: invalid dimension {dim}")
    record_bytes = 4 + 4 * dim
    if len(raw) % record_bytes != 0:
        raise SerializationError(
            f"{path}: size {len(raw)} not a multiple of record size "
            f"{record_bytes}")
    count = len(raw) // record_bytes
    if max_vectors is not None:
        count = min(count, max_vectors)
    flat = np.frombuffer(raw, dtype=np.int32,
                         count=count * (dim + 1)).reshape(count, dim + 1)
    if not np.all(flat[:, 0] == dim):
        raise SerializationError(f"{path}: inconsistent dimensions")
    body = flat[:, 1:]
    if dtype == np.float32:
        return body.view(np.float32).copy()
    return body.astype(np.int32, copy=True)


def read_fvecs(path: "str | os.PathLike[str]",
               max_vectors: int | None = None) -> np.ndarray:
    """Load float vectors from an ``.fvecs`` file."""
    return _read_vecs(path, np.dtype(np.float32), max_vectors)


def read_ivecs(path: "str | os.PathLike[str]",
               max_vectors: int | None = None) -> np.ndarray:
    """Load integer vectors (e.g. ground-truth ids) from ``.ivecs``."""
    return _read_vecs(path, np.dtype(np.int32), max_vectors)


def _write_vecs(path: "str | os.PathLike[str]", array: np.ndarray,
                dtype: np.dtype) -> None:
    array = np.atleast_2d(np.asarray(array))
    count, dim = array.shape
    if dim == 0:
        raise ValueError("cannot write zero-dimensional vectors")
    body = array.astype(dtype, copy=False)
    dims = np.full((count, 1), dim, dtype=np.int32)
    interleaved = np.hstack([dims.view(dtype), body])
    with open(path, "wb") as handle:
        handle.write(interleaved.tobytes())


def write_fvecs(path: "str | os.PathLike[str]", array: np.ndarray) -> None:
    """Write float vectors in ``.fvecs`` format."""
    _write_vecs(path, array, np.dtype(np.float32))


def write_ivecs(path: "str | os.PathLike[str]", array: np.ndarray) -> None:
    """Write integer vectors in ``.ivecs`` format."""
    _write_vecs(path, array, np.dtype(np.int32))
