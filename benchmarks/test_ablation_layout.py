"""A1: the shared-overflow group layout vs a fragmented append area.

§3.2 argues that appending inserted vectors at the tail of a global area
scatters a cluster's fresh records across memory, so reading a cluster
back requires one round trip per fragment, whereas the group layout
serves cluster + overflow in a single contiguous READ.

The ablation inserts records into one group and compares reading the
cluster back both ways, using the same cost model:

* d-HNSW layout: one READ of the contiguous extent;
* fragmented layout: one READ for the blob plus one READ per record
  (what a global append area degenerates to).
"""

from __future__ import annotations

from repro.core import Scheme
from repro.layout.group_layout import cluster_read_extent
from repro.layout.serializer import overflow_record_size
from repro.rdma import QueuePair, SimClock

from .conftest import emit_table

NUM_INSERTS = 32


def test_ablation_contiguous_vs_fragmented(sift_world, benchmark):
    world = sift_world
    client = world.client(Scheme.DHNSW, contended=False)
    probe = world.dataset.queries[0]
    cluster_id = client.meta.classify(probe)
    for i in range(NUM_INSERTS):
        client.insert(probe + 1e-4 * i, 900_000 + i)

    layout = world.deployment.layout
    metadata = client.metadata
    offset, length = cluster_read_extent(metadata, cluster_id)
    entry = metadata.clusters[cluster_id]
    record = overflow_record_size(metadata.dim)

    # Contiguous: one READ covering blob + overflow.
    contiguous_qp = QueuePair(layout.memory_node, SimClock(),
                              world.cost_model)
    contiguous_qp.connect()
    contiguous_qp.post_read(layout.rkey, layout.addr(offset), length)
    contiguous = contiguous_qp.stats

    # Fragmented: blob READ + one READ per scattered record.
    fragmented_qp = QueuePair(layout.memory_node, SimClock(),
                              world.cost_model)
    fragmented_qp.connect()
    fragmented_qp.post_read(layout.rkey, layout.addr(entry.blob_offset),
                            entry.blob_length)
    group = metadata.groups[entry.group_id]
    for slot in range(NUM_INSERTS):
        fragmented_qp.post_read(
            layout.rkey,
            layout.addr(group.overflow_offset + 8 + slot * record), record)
    fragmented = fragmented_qp.stats

    header = (f"{'layout':<22} {'round_trips':>12} {'bytes_read':>11} "
              f"{'network_us':>11}")
    rows = [
        f"{'shared-overflow':<22} {contiguous.round_trips:>12} "
        f"{contiguous.bytes_read:>11} {contiguous.network_time_us:>11.2f}",
        f"{'fragmented-append':<22} {fragmented.round_trips:>12} "
        f"{fragmented.bytes_read:>11} {fragmented.network_time_us:>11.2f}",
    ]
    emit_table("ablation_layout", header, rows)

    assert contiguous.round_trips == 1
    assert fragmented.round_trips == 1 + NUM_INSERTS
    assert contiguous.network_time_us < fragmented.network_time_us

    benchmark.pedantic(
        lambda: contiguous_qp.post_read(layout.rkey, layout.addr(offset),
                                        length),
        rounds=1, iterations=1)
    benchmark.extra_info["round_trip_savings"] = fragmented.round_trips
