"""CLI: build / info / query / insert against a temp deployment."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def built_index(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "dep"
    code = main(["build", "--dataset", "random", "--num-vectors", "800",
                 "--num-queries", "20", "--num-representatives", "6",
                 "--seed", "3", "--out", str(path)])
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--index", "x",
                                       "--scheme", "bogus"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build", "--out", "x",
                                       "--dataset", "laion"])


class TestBuild:
    def test_artifacts_written(self, built_index):
        for name in ("manifest.json", "region.bin", "meta.bin",
                     "queries.fvecs", "ground_truth.ivecs"):
            assert (built_index / name).exists(), name

    def test_build_output_mentions_partitions(self, built_index, capsys):
        main(["info", "--index", str(built_index)])
        out = capsys.readouterr().out
        assert "partitions" in out
        assert "meta-HNSW" in out


class TestQuery:
    def test_query_reports_recall_and_breakdown(self, built_index,
                                                capsys):
        code = main(["query", "--index", str(built_index), "--k", "5",
                     "--ef", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recall@5" in out
        assert "round trips/query" in out
        recall = float([line for line in out.splitlines()
                        if "recall@5" in line][0].split(":")[1])
        assert recall >= 0.8

    def test_query_with_scheme(self, built_index, capsys):
        code = main(["query", "--index", str(built_index),
                     "--scheme", "naive-d-hnsw", "--k", "3", "--ef", "16"])
        assert code == 0
        assert "naive-d-hnsw" in capsys.readouterr().out

    def test_num_queries_limits(self, built_index, capsys):
        code = main(["query", "--index", str(built_index),
                     "--num-queries", "5", "--k", "3", "--ef", "8"])
        assert code == 0
        assert "queries            : 5" in capsys.readouterr().out

    def test_missing_index_is_error_not_traceback(self, tmp_path, capsys):
        code = main(["query", "--index", str(tmp_path / "nope")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestInsert:
    def test_insert_and_requery(self, built_index, capsys):
        code = main(["insert", "--index", str(built_index),
                     "--count", "10", "--save"])
        assert code == 0
        out = capsys.readouterr().out
        assert "inserted 10 vectors" in out
        # Re-query the mutated, re-saved deployment.
        assert main(["query", "--index", str(built_index), "--k", "3",
                     "--ef", "16"]) == 0

    def test_insert_without_save_leaves_disk_unchanged(self, built_index):
        before = (built_index / "region.bin").read_bytes()
        main(["insert", "--index", str(built_index), "--count", "3"])
        assert (built_index / "region.bin").read_bytes() == before


class TestFsckCommand:
    def test_clean_deployment_exits_zero(self, built_index, capsys):
        assert main(["fsck", "--index", str(built_index)]) == 0
        assert "CLEAN" in capsys.readouterr().out


class TestTuneCommand:
    def test_reachable_target(self, built_index, capsys):
        code = main(["tune", "--index", str(built_index),
                     "--k", "5", "--target-recall", "0.7",
                     "--ef-max", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chosen efSearch" in out
        assert "met" in out

    def test_unreachable_target_exit_code(self, built_index, capsys):
        code = main(["tune", "--index", str(built_index),
                     "--k", "5", "--target-recall", "1.0",
                     "--ef-max", "1"])
        out = capsys.readouterr().out
        if code == 3:
            assert "NOT met" in out
        else:
            # Tiny corpora can genuinely reach recall 1.0 at ef 1.
            assert code == 0
