"""A3: compute-instance cache capacity sweep.

§4 fixes the cluster cache at 10 % of all sub-HNSW clusters; this
ablation varies the fraction and reports steady-state traffic for a
repeated batch (the second batch, after the cache is warm).  More cache
means fewer fetches and less network time, saturating once the working
set fits.
"""

from __future__ import annotations

from repro.core import DHnswClient, Scheme

from .conftest import emit_table

FRACTIONS = (0.02, 0.05, 0.10, 0.25, 0.50, 1.0)


def test_ablation_cache_fraction(sift_world, benchmark):
    world = sift_world
    results = []
    for fraction in FRACTIONS:
        config = world.config.replace(cache_fraction=fraction)
        client = DHnswClient(world.deployment.layout,
                             world.deployment.meta, config,
                             scheme=Scheme.DHNSW,
                             cost_model=world.loaded_cost_model,
                             name=f"cache-{fraction}")
        client.search_batch(world.dataset.queries, 10, ef_search=16)
        warm = client.search_batch(world.dataset.queries, 10, ef_search=16)
        results.append((fraction, warm.clusters_fetched, warm.cache_hits,
                        warm.per_query_breakdown().network_us))

    header = (f"{'cache_fraction':>14} {'fetches':>8} {'hits':>6} "
              f"{'network_us_per_query':>21}")
    rows = [f"{fraction:>14.2f} {fetches:>8} {hits:>6} {net:>21.3f}"
            for fraction, fetches, hits, net in results]
    emit_table("ablation_cache", header, rows)

    fetches = [f for _, f, _, _ in results]
    nets = [n for _, _, _, n in results]
    # Warm-batch fetches shrink (weakly) as the cache grows, and a cache
    # holding every cluster eliminates fetches entirely.
    assert all(a >= b for a, b in zip(fetches, fetches[1:]))
    assert fetches[-1] == 0
    assert nets[-1] < nets[0]
    # The paper's 10 % operating point never does worse than the
    # smallest cache (strictly better once the cluster count is large
    # enough that capacities actually differ).
    ten_percent = dict((f, n) for f, _, _, n in results)
    assert ten_percent[0.10] <= ten_percent[0.02]

    config = world.config
    client = DHnswClient(world.deployment.layout, world.deployment.meta,
                         config, scheme=Scheme.DHNSW,
                         cost_model=world.loaded_cost_model)
    benchmark.pedantic(
        lambda: client.search_batch(world.dataset.queries, 10,
                                    ef_search=16),
        rounds=1, iterations=1)
    benchmark.extra_info["warm_fetches_by_fraction"] = {
        str(fraction): fetches_count
        for fraction, fetches_count, _, _ in results}
