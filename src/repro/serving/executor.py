"""Executor stage: wave schedules to merged candidates.

Runs each wave's per-cluster query groups on the configured executor
(inline, thread pool, or the cluster-affine process pool) and drives the
two wave schedules: strictly serial, and the double-buffered pipeline that
hides wave ``i+1``'s wire time behind wave ``i``'s compute.  Owns the
worker pools, so shutting the executor down releases every OS resource the
serving path created.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.cache import CachedCluster
from repro.core.cluster_search import search_cluster_entry
from repro.core.merge import TopKMerger
from repro.core.query_planner import BatchPlan, Wave
from repro.core.search_pool import SearchPool
from repro.errors import LayoutError
from repro.serving.fetcher import Fetcher
from repro.serving.trace import TraceContext, span

__all__ = ["PlanExecution", "WaveExecutor", "overlap_saved"]


@dataclasses.dataclass
class PlanExecution:
    """What a wave schedule actually did (returned by ``execute_plan``)."""

    sub_evals: int = 0
    fetched: int = 0
    hit_count: int = 0
    #: Closed-form overlap estimate from the per-wave profiles (the
    #: pre-PR-4 formula, retained as a test oracle).
    overlap_oracle_us: float = 0.0
    #: True when deserialize + compute were charged per wave inside the
    #: pipelined loop; the engine must then skip its lump charges.
    charged_in_loop: bool = False
    #: Simulated µs already charged to the sub-HNSW bucket in-loop.
    charged_compute_us: float = 0.0
    pipeline_executed: bool = False


def overlap_saved(profiles: list[tuple[float, float]]) -> float:
    """Serial minus pipelined schedule length for the given waves.

    Pipelined: ``f_0 + sum(max(f_{i+1}, p_i)) + p_last`` — wave
    ``i``'s search overlaps wave ``i+1``'s fetch.
    """
    if len(profiles) < 2:
        return 0.0
    serial = sum(fetch + process for fetch, process in profiles)
    pipelined = profiles[0][0]
    for (_, process), (next_fetch, _) in zip(profiles, profiles[1:]):
        pipelined += max(process, next_fetch)
    pipelined += profiles[-1][1]
    return serial - pipelined


class WaveExecutor:
    """Searches planned waves on the configured worker pool."""

    def __init__(self, host, fetcher: Fetcher) -> None:
        self.host = host
        self.fetcher = fetcher
        # Search executors, created lazily on the first multi-worker wave.
        self._thread_pool: ThreadPoolExecutor | None = None
        self._search_pool: SearchPool | None = None

    # -- pool lifecycle --------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pools (idempotent)."""
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=False, cancel_futures=True)
            self._thread_pool = None
        if self._search_pool is not None:
            self._search_pool.close()
            self._search_pool = None

    def _get_thread_pool(self) -> ThreadPoolExecutor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.host.config.search_workers,
                thread_name_prefix=f"{self.host.node.name}-search")
        return self._thread_pool

    def _get_search_pool(self) -> SearchPool:
        if self._search_pool is None:
            self._search_pool = SearchPool(self.host.config.search_workers)
        return self._search_pool

    # -- schedules -------------------------------------------------------
    def execute_plan(self, plan: BatchPlan, queries: np.ndarray,
                     merger: TopKMerger, k: int, ef: int,
                     trace: TraceContext | None = None) -> PlanExecution:
        """Run a deduplicated wave schedule.

        With ``config.pipeline_waves`` set and at least two waves, the
        double-buffered executor actually overlaps wave ``i+1``'s fetch
        with wave ``i``'s search; otherwise waves run strictly serially
        (the pre-PR-4 schedule, numerically unchanged).
        """
        if self.host.config.pipeline_waves and len(plan.waves) >= 2:
            return self.execute_pipelined(plan, queries, merger, k, ef,
                                          trace)
        return self.execute_serial(plan, queries, merger, k, ef, trace)

    def execute_serial(self, plan: BatchPlan, queries: np.ndarray,
                       merger: TopKMerger, k: int, ef: int,
                       trace: TraceContext | None = None) -> PlanExecution:
        """Strictly serial wave schedule: fetch, then search, per wave."""
        execution = PlanExecution()
        for wave in plan.waves:
            entries = self.fetcher.load_wave(wave, execution, trace)
            execution.sub_evals += self.run_wave_compute(
                wave, entries, queries, merger, k, ef, trace)
        return execution

    def execute_pipelined(self, plan: BatchPlan, queries: np.ndarray,
                          merger: TopKMerger, k: int, ef: int,
                          trace: TraceContext | None = None
                          ) -> PlanExecution:
        """Double-buffered wave schedule: wave ``i+1``'s doorbell-batched
        fetch is issued asynchronously before wave ``i``'s search runs, so
        its wire time hides behind compute.

        Deserialize and compute are charged per wave *inside* the loop —
        that interleaving is what makes the transport's poll observe
        elapsed time — so ``charged_in_loop`` tells the engine to skip its
        lump charges.  The realized schedule is exactly the
        ``overlap_saved`` oracle's ``f_0 + Σ max(p_i, f_{i+1}) + p_last``;
        the oracle value is recorded for the acceptance test to compare
        against the measured ``overlapped_time_us``.
        """
        host = self.host
        fetcher = self.fetcher
        execution = PlanExecution(charged_in_loop=True,
                                  pipeline_executed=True)
        waves = plan.waves
        doorbell = host.policy.doorbell_batching
        profiles: list[tuple[float, float]] = []  # (fetch, process) per wave
        pending: tuple | None = None
        pending_index = -1

        for index, wave in enumerate(waves):
            sync_network_before = host.node.stats.network_time_us
            entries: dict[int, CachedCluster] = {}
            if wave.fetch_cluster_ids:
                token, extents = (pending if pending_index == index
                                  else fetcher.issue_async(
                                      list(wave.fetch_cluster_ids),
                                      doorbell))
                with span(trace, "fetch"):
                    payloads = fetcher.poll(token)
                wave_fetch_us = token.elapsed_us
                if (index + 1 < len(waves)
                        and waves[index + 1].fetch_cluster_ids):
                    pending = fetcher.issue_async(
                        list(waves[index + 1].fetch_cluster_ids), doorbell)
                    pending_index = index + 1
                with span(trace, "decode"):
                    loaded = {
                        cid: fetcher.decoder.decode_extent(cid, offset,
                                                           payload)
                        for (cid, offset, _), payload
                        in zip(extents, payloads)}
                execution.fetched += len(loaded)
                for entry in loaded.values():
                    if host.policy.use_cluster_cache:
                        fetcher.cache_put(entry)
                entries.update(loaded)
            else:
                fetcher.load_hit_wave(wave, entries, execution, trace)
                wave_fetch_us = (host.node.stats.network_time_us
                                 - sync_network_before)
                if (index + 1 < len(waves)
                        and waves[index + 1].fetch_cluster_ids):
                    pending = fetcher.issue_async(
                        list(waves[index + 1].fetch_cluster_ids), doorbell)
                    pending_index = index + 1
            deserialize_us = fetcher.decoder.drain_deserialize_us()
            with span(trace, "decode"):
                charged = host.node.charge_time(deserialize_us)
            wave_evals = self.run_wave_compute(wave, entries, queries,
                                               merger, k, ef, trace)
            with span(trace, "compute"):
                charged += host.node.charge_compute(wave_evals,
                                                    host.meta.dim)
            execution.sub_evals += wave_evals
            execution.charged_compute_us += charged
            profiles.append((wave_fetch_us, charged))
        execution.overlap_oracle_us = overlap_saved(profiles)
        return execution

    def execute_naive(self, required: list[list[int]], queries: np.ndarray,
                      merger: TopKMerger, k: int, ef: int,
                      trace: TraceContext | None = None) -> PlanExecution:
        """Naive d-HNSW: one READ round trip per (query, cluster) pair."""
        execution = PlanExecution()
        for query_index, cluster_ids in enumerate(required):
            for cid in cluster_ids:
                entry = self.fetcher.fetch_clusters(
                    [cid], False, trace)[cid]
                execution.fetched += 1
                with span(trace, "compute"):
                    output = search_cluster_entry(
                        entry, queries[query_index:query_index + 1], k, ef)
                execution.sub_evals += output.evals
                merger.add(query_index, output.gids[0], output.dists[0])
        return execution

    # -- per-wave compute -------------------------------------------------
    def run_wave_compute(self, wave: Wave,
                         entries: dict[int, CachedCluster],
                         queries: np.ndarray, merger: TopKMerger, k: int,
                         ef: int,
                         trace: TraceContext | None = None) -> int:
        """Search a wave's per-cluster query groups on the configured
        executor; merge candidates in deterministic cluster order.

        Tasks are the pure :func:`search_cluster_entry` — each returns
        private per-query candidate arrays, so nothing shared is mutated
        off the main thread and results are bit-identical at every worker
        count.  Returns the wave's distance evaluations.
        """
        host = self.host
        with span(trace, "compute"):
            tasks: list[tuple[int, CachedCluster, list[int]]] = []
            for cid, query_indices in wave.cluster_groups():
                entry = entries.get(cid)
                if entry is None:
                    entry = host.cache.peek(cid)
                if entry is None:
                    raise LayoutError(
                        f"planned cluster {cid} missing during wave")
                tasks.append((cid, entry, query_indices))
            # Pin for the duration of the search: a concurrent request's
            # cache admission must not spill these entries (their vector
            # stores may be zero-copy views whose DRAM accounting would
            # be freed mid-search), and a concurrent invalidation must
            # materialize rather than leave them over rewritten memory.
            for _, entry, _ in tasks:
                host.cache.pin(entry)
            try:
                workers = host.config.search_workers
                started = time.perf_counter()
                if workers > 1 and len(tasks) > 1:
                    if host.config.search_executor == "process":
                        outputs = self._get_search_pool().run_wave(
                            [(cid,
                              (entry.metadata_version, entry.overflow_tail),
                              entry, queries[query_indices], k, ef)
                             for cid, entry, query_indices in tasks])
                    else:
                        pool = self._get_thread_pool()
                        futures = [pool.submit(search_cluster_entry, entry,
                                               queries[query_indices], k, ef)
                                   for _, entry, query_indices in tasks]
                        outputs = [future.result() for future in futures]
                else:
                    outputs = [search_cluster_entry(entry,
                                                    queries[query_indices],
                                                    k, ef)
                               for _, entry, query_indices in tasks]
            finally:
                for _, entry, _ in tasks:
                    host.cache.unpin(entry)
            host.node.record_wall_compute(time.perf_counter() - started)
            wave_evals = 0
            for (_, _, query_indices), output in zip(tasks, outputs):
                wave_evals += output.evals
                for row, query_index in enumerate(query_indices):
                    merger.add(query_index, output.gids[row],
                               output.dists[row])
        return wave_evals
