"""The simulated-RDMA transport: ``repro.rdma`` behind the seam.

:class:`SimRdmaTransport` adapts a connected
:class:`~repro.rdma.qp.QueuePair` to the :class:`~repro.transport.base.
Transport` protocol.  It adds **zero** cost of its own — every verb maps
1:1 onto the queue pair's, so simulated numbers are bit-identical to
pre-seam code that called the QP directly.

:func:`connect` builds the whole substrate stack (queue pair over a memory
node) so upper layers can obtain a transport without naming
``repro.rdma.qp`` — the builder's bulk-load path uses it.
"""

from __future__ import annotations

from repro.rdma.clock import SimClock
from repro.rdma.memory_node import MemoryNode
from repro.rdma.network import CostModel
from repro.rdma.qp import (
    PendingRead,
    QueuePair,
    ReadDescriptor,
    WriteDescriptor,
)
from repro.rdma.stats import RdmaStats

__all__ = ["SimRdmaTransport", "connect"]


class SimRdmaTransport:
    """One-sided verbs over the simulated RDMA queue pair."""

    def __init__(self, qp: QueuePair) -> None:
        self._qp = qp

    # -- bookkeeping ----------------------------------------------------
    @property
    def clock(self) -> SimClock:
        return self._qp.clock

    @property
    def stats(self) -> RdmaStats:
        return self._qp.stats

    # -- synchronous verbs ----------------------------------------------
    def read(self, rkey: int, addr: int, length: int) -> memoryview:
        return self._qp.post_read(rkey, addr, length)

    def write(self, rkey: int, addr: int, data) -> None:
        self._qp.post_write(rkey, addr, data)

    def cas(self, rkey: int, addr: int, expected: int, desired: int) -> int:
        return self._qp.post_cas(rkey, addr, expected, desired)

    def faa(self, rkey: int, addr: int, delta: int) -> int:
        return self._qp.post_faa(rkey, addr, delta)

    # -- batched verbs --------------------------------------------------
    def read_batch(self, descriptors: list[ReadDescriptor],
                   doorbell: bool = True) -> list[memoryview]:
        if doorbell:
            return self._qp.post_read_batch(descriptors)
        return [self._qp.post_read(d.rkey, d.addr, d.length)
                for d in descriptors]

    def write_batch(self, descriptors: list[WriteDescriptor],
                    doorbell: bool = True) -> None:
        if doorbell:
            self._qp.post_write_batch(descriptors)
            return
        for descriptor in descriptors:
            self._qp.post_write(descriptor.rkey, descriptor.addr,
                                descriptor.data)

    def read_batch_async(self, descriptors: list[ReadDescriptor],
                         doorbell: bool = True) -> PendingRead:
        return self._qp.post_read_batch_async(descriptors, doorbell=doorbell)

    def poll(self, pending: PendingRead) -> "list[memoryview | bytes]":
        return self._qp.poll_cq(pending)

    def abandon(self, pending: PendingRead) -> None:
        self._qp.abandon_cq(pending)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        self._qp.close()


def connect(memory_node: MemoryNode, clock: SimClock, cost_model: CostModel,
            stats: RdmaStats | None = None) -> SimRdmaTransport:
    """Connect a fresh queue pair to ``memory_node`` and wrap it.

    The sanctioned way for upper layers to stand up a transport without
    importing the queue-pair machinery.
    """
    qp = QueuePair(memory_node, clock, cost_model, stats)
    qp.connect()
    return SimRdmaTransport(qp)
