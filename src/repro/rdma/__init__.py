"""Simulated RDMA-based disaggregated memory.

This subpackage is the hardware substitution documented in DESIGN.md: a
deterministic cost-model simulation of one-sided verbs (READ / WRITE / CAS /
FAA), doorbell batching, registered memory regions, and the compute/memory
pool split.  All latencies it produces are simulated microseconds.
"""

from repro.rdma.clock import SimClock
from repro.rdma.compute_node import ComputeNode
from repro.rdma.memory_node import MemoryNode, MemoryRegion
from repro.rdma.network import CostModel
from repro.rdma.qp import (
    PendingRead,
    QpState,
    QueuePair,
    ReadDescriptor,
    WriteDescriptor,
)
from repro.rdma.stats import RdmaStats

__all__ = [
    "ComputeNode",
    "CostModel",
    "MemoryNode",
    "MemoryRegion",
    "PendingRead",
    "QpState",
    "QueuePair",
    "RdmaStats",
    "ReadDescriptor",
    "SimClock",
    "WriteDescriptor",
]
