"""Staged pipeline vs the retained monolithic reference, bit for bit.

The refactor's acceptance oracle: ``ServingEngine`` with
``plan_executor = "reference"`` replays the pre-refactor monolithic wave
loop.  For every executor configuration, a staged client and a reference
client over the same layout must produce identical answers *and*
identical simulated ledgers — same RdmaStats field by field, same latency
breakdown, same cache counters.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.client import DHnswClient

MATRIX = [
    ("thread", 1),
    ("thread", 4),
    ("process", 1),
    ("process", 4),
]


def make_client(deployment, name, *, pipeline, executor, workers):
    config = deployment.config.replace(
        pipeline_waves=pipeline, search_executor=executor,
        search_workers=workers)
    return DHnswClient(deployment.layout, deployment.meta, config,
                       cost_model=deployment.effective_cost_model,
                       name=name)


def assert_batches_identical(staged, oracle):
    for one, other in zip(staged.results, oracle.results, strict=True):
        np.testing.assert_array_equal(one.ids, other.ids)
        np.testing.assert_array_equal(one.distances, other.distances)
    assert dataclasses.asdict(staged.rdma) == dataclasses.asdict(oracle.rdma)
    assert staged.breakdown.meta_hnsw_us == oracle.breakdown.meta_hnsw_us
    assert staged.breakdown.sub_hnsw_us == oracle.breakdown.sub_hnsw_us
    assert staged.breakdown.network_us == oracle.breakdown.network_us
    assert staged.sub_evals == oracle.sub_evals
    assert staged.clusters_fetched == oracle.clusters_fetched
    assert staged.cache_hits == oracle.cache_hits
    assert staged.cache_misses == oracle.cache_misses
    assert staged.cache_evictions == oracle.cache_evictions
    assert staged.waves == oracle.waves
    assert (staged.duplicate_requests_pruned
            == oracle.duplicate_requests_pruned)
    assert staged.pipeline_executed == oracle.pipeline_executed
    assert staged.overlap_saved_us == oracle.overlap_saved_us
    assert staged.overlap_oracle_us == oracle.overlap_oracle_us


@pytest.mark.parametrize("pipeline", [False, True],
                         ids=["serial", "pipelined"])
@pytest.mark.parametrize("executor,workers",
                         MATRIX, ids=[f"{e}{w}" for e, w in MATRIX])
def test_staged_matches_reference(built_deployment, small_dataset,
                                  pipeline, executor, workers):
    queries = small_dataset.queries[:12]
    staged = make_client(built_deployment, "staged", pipeline=pipeline,
                         executor=executor, workers=workers)
    oracle = make_client(built_deployment, "oracle", pipeline=pipeline,
                         executor=executor, workers=workers)
    oracle.engine.plan_executor = "reference"
    try:
        # Cold batch (all misses), then a warm batch (cache hits plus the
        # overflow-tail validation path) — both must match exactly.
        for _ in range(2):
            staged_result = staged.search_batch(queries, k=10)
            oracle_result = oracle.search_batch(queries, k=10)
            assert_batches_identical(staged_result, oracle_result)
        # Only the staged path populates per-stage traces.
        assert staged_result.trace is not None
        assert staged_result.trace.total_sim_us > 0.0
    finally:
        staged.close()
        oracle.close()


def test_reference_covers_naive_path(built_deployment, small_dataset):
    """With batch dedup off (naive scheme), the oracle path still matches."""
    from repro.core.baselines import Scheme

    queries = small_dataset.queries[:6]
    staged = built_deployment.make_client(Scheme.NAIVE, "naive-staged")
    oracle = built_deployment.make_client(Scheme.NAIVE, "naive-oracle")
    oracle.engine.plan_executor = "reference"
    try:
        assert_batches_identical(staged.search_batch(queries, k=5),
                                 oracle.search_batch(queries, k=5))
    finally:
        staged.close()
        oracle.close()
