"""Cluster blob and overflow-record serialization round-trips."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.hnsw import HnswIndex, HnswParams
from repro.layout.serializer import (
    OverflowRecord,
    deserialize_cluster,
    overflow_record_size,
    pack_overflow_record,
    serialize_cluster,
    serialize_cluster_reference,
    serialized_cluster_size,
    unpack_overflow_records,
)


def build_index(count: int, dim: int, seed: int = 0,
                label_base: int = 0) -> HnswIndex:
    generator = np.random.default_rng(seed)
    index = HnswIndex(dim, HnswParams(m=6, ef_construction=30, seed=seed))
    if count:
        index.add(generator.standard_normal((count, dim)).astype(np.float32),
                  labels=list(range(label_base, label_base + count)))
    return index


class TestClusterRoundtrip:
    def test_structure_identical(self):
        original = build_index(120, 12, seed=3, label_base=500)
        blob = serialize_cluster(original, cluster_id=7)
        restored, cid = deserialize_cluster(blob)
        assert cid == 7
        assert len(restored) == 120
        assert restored.labels == original.labels
        assert restored.graph.adjacency == original.graph.adjacency
        assert restored.graph.entry_point == original.graph.entry_point
        assert restored.graph.max_level == original.graph.max_level
        np.testing.assert_array_equal(restored.graph.vectors,
                                      original.graph.vectors)

    def test_restored_index_answers_identically(self):
        original = build_index(200, 8, seed=1)
        restored, _ = deserialize_cluster(serialize_cluster(original, 0))
        generator = np.random.default_rng(9)
        for query in generator.standard_normal((10, 8)).astype(np.float32):
            original_labels, _ = original.search(query, 5, ef=32)
            restored_labels, _ = restored.search(query, 5, ef=32)
            np.testing.assert_array_equal(original_labels, restored_labels)

    def test_restored_invariants(self):
        original = build_index(80, 6, seed=2)
        restored, _ = deserialize_cluster(serialize_cluster(original, 0))
        restored.graph.check_invariants()

    def test_empty_cluster(self):
        empty = build_index(0, 16)
        restored, cid = deserialize_cluster(serialize_cluster(empty, 3))
        assert cid == 3
        assert len(restored) == 0
        assert restored.graph.entry_point is None

    def test_single_node_cluster(self):
        single = build_index(1, 4, label_base=42)
        restored, _ = deserialize_cluster(serialize_cluster(single, 0))
        assert restored.labels == [42]

    @settings(max_examples=15, deadline=None)
    @given(count=st.integers(min_value=0, max_value=50),
           dim=st.integers(min_value=1, max_value=24),
           seed=st.integers(min_value=0, max_value=5))
    def test_roundtrip_property(self, count, dim, seed):
        original = build_index(count, dim, seed=seed)
        restored, _ = deserialize_cluster(serialize_cluster(original, 0))
        assert restored.labels == original.labels
        assert restored.graph.adjacency == original.graph.adjacency


class TestZeroCopySerializer:
    """The buffer-view writer matches the reference struct packer."""

    @pytest.mark.parametrize("count,dim,seed", [(0, 4, 0), (1, 4, 1),
                                                (120, 12, 3), (200, 8, 1)])
    def test_bytes_identical_to_reference(self, count, dim, seed):
        index = build_index(count, dim, seed=seed, label_base=1000)
        fast = serialize_cluster(index, cluster_id=9)
        reference = serialize_cluster_reference(index, cluster_id=9)
        assert fast == reference

    @pytest.mark.parametrize("count,dim", [(0, 4), (1, 6), (150, 10)])
    def test_size_formula_exact(self, count, dim):
        index = build_index(count, dim, seed=5)
        assert serialized_cluster_size(index) == \
            len(serialize_cluster(index, cluster_id=0))

    @settings(max_examples=15, deadline=None)
    @given(count=st.integers(min_value=0, max_value=40),
           dim=st.integers(min_value=2, max_value=16),
           seed=st.integers(min_value=0, max_value=5))
    def test_equivalence_property(self, count, dim, seed):
        index = build_index(count, dim, seed=seed)
        blob = serialize_cluster(index, cluster_id=count)
        assert blob == serialize_cluster_reference(index, cluster_id=count)
        assert len(blob) == serialized_cluster_size(index)


class TestClusterErrors:
    def test_bad_magic(self):
        blob = serialize_cluster(build_index(5, 4), 0)
        corrupted = b"XXXX" + blob[4:]
        with pytest.raises(SerializationError, match="bad magic"):
            deserialize_cluster(corrupted)

    def test_truncated_header(self):
        with pytest.raises(SerializationError, match="shorter than header"):
            deserialize_cluster(b"DHN1")

    def test_truncated_body(self):
        blob = serialize_cluster(build_index(30, 8), 0)
        with pytest.raises(SerializationError):
            deserialize_cluster(blob[: len(blob) // 2])

    def test_unsupported_version(self):
        blob = bytearray(serialize_cluster(build_index(2, 4), 0))
        blob[4] = 99  # version field follows the 4-byte magic
        with pytest.raises(SerializationError, match="version"):
            deserialize_cluster(bytes(blob))


class TestOverflowRecords:
    def test_record_size_formula(self):
        assert overflow_record_size(4) == 12 + 16
        assert overflow_record_size(128) == 12 + 512

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            overflow_record_size(0)

    def test_roundtrip_single(self):
        record = OverflowRecord(global_id=1_000_000, cluster_id=17,
                                vector=np.arange(6, dtype=np.float32))
        blob = pack_overflow_record(record)
        assert len(blob) == overflow_record_size(6)
        (restored,) = unpack_overflow_records(blob, 6, 1)
        assert restored.global_id == 1_000_000
        assert restored.cluster_id == 17
        np.testing.assert_array_equal(restored.vector, record.vector)

    def test_roundtrip_many_concatenated(self):
        records = [OverflowRecord(i, i % 3,
                                  np.full(5, float(i), dtype=np.float32))
                   for i in range(10)]
        blob = b"".join(pack_overflow_record(r) for r in records)
        restored = unpack_overflow_records(blob, 5, 10)
        assert [r.global_id for r in restored] == list(range(10))

    def test_partial_unpack(self):
        records = [OverflowRecord(i, 0, np.zeros(3, dtype=np.float32))
                   for i in range(5)]
        blob = b"".join(pack_overflow_record(r) for r in records)
        assert len(unpack_overflow_records(blob, 3, 2)) == 2

    def test_short_blob_rejected(self):
        with pytest.raises(SerializationError, match="overflow blob"):
            unpack_overflow_records(b"\x00" * 10, 4, 1)

    def test_negative_global_id_supported(self):
        record = OverflowRecord(-5, 0, np.zeros(2, dtype=np.float32))
        (restored,) = unpack_overflow_records(pack_overflow_record(record),
                                              2, 1)
        assert restored.global_id == -5
