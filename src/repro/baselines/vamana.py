"""Vamana: the flat navigable graph of the DiskANN lineage.

The paper's §2.1 credits graph indexes ("[6, 20]") — reference [6] is
NSG, the flat single-layer navigable graph family that Vamana refined.
This from-scratch Vamana gives the benchmarks a second graph index to
compare HNSW against: one layer, fixed degree bound ``r``, built by
iterative re-insertion with the *robust prune* rule (keep a candidate
only while it is not ``alpha``-dominated by an already-kept neighbour).

It reuses the HNSW substrate's :class:`LayeredGraph` (everything at
level 0) and beam search, so serialization and counted distances come
for free.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError, EmptyIndexError
from repro.hnsw.distance import DistanceKernel, Metric
from repro.hnsw.graph import LayeredGraph
from repro.hnsw.search import knn_from_candidates, search_layer

__all__ = ["VamanaIndex"]


class VamanaIndex:
    """Single-layer navigable graph with robust pruning."""

    def __init__(self, dim: int, r: int = 16, alpha: float = 1.2,
                 ef_construction: int = 64, seed: int = 0) -> None:
        if dim < 1:
            raise ConfigError(f"dim must be >= 1, got {dim}")
        if r < 2:
            raise ConfigError(f"r must be >= 2, got {r}")
        if alpha < 1.0:
            raise ConfigError(f"alpha must be >= 1.0, got {alpha}")
        if ef_construction < 1:
            raise ConfigError(
                f"ef_construction must be >= 1, got {ef_construction}")
        self.dim = dim
        self.r = r
        self.alpha = alpha
        self.ef_construction = ef_construction
        self.seed = seed
        self.kernel = DistanceKernel(dim, Metric.L2)
        self.graph = LayeredGraph(dim)
        self.labels: list[int] = []
        self._medoid: int | None = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.graph)

    @property
    def medoid(self) -> int | None:
        """The fixed entry point (closest node to the centroid)."""
        return self._medoid

    def build(self, vectors: np.ndarray,
              labels: Sequence[int] | None = None) -> None:
        """Construct the graph over ``vectors`` (two robust-prune passes,
        the second at ``alpha`` as in the DiskANN recipe)."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self.dim:
            raise ConfigError(
                f"expected dim {self.dim}, got {vectors.shape[1]}")
        if labels is not None and len(labels) != vectors.shape[0]:
            raise ConfigError(
                f"{vectors.shape[0]} vectors but {len(labels)} labels")
        count = vectors.shape[0]
        self.graph = LayeredGraph(self.dim)
        self.labels = ([int(x) for x in labels] if labels is not None
                       else list(range(count)))
        for row in range(count):
            self.graph.add_node(vectors[row], level=0)
        if count == 0:
            self._medoid = None
            return

        rng = np.random.default_rng(self.seed)
        # Random bootstrap graph: r out-edges per node.
        for node in range(count):
            if count > 1:
                others = rng.choice(count - 1,
                                    size=min(self.r, count - 1),
                                    replace=False)
                neighbors = [int(o) if o < node else int(o) + 1
                             for o in others]
                self.graph.set_neighbors(node, 0, neighbors)

        centroid = vectors.mean(axis=0)
        self._medoid = int(np.argmin(self.kernel.many(centroid, vectors)))

        for pass_alpha in (1.0, self.alpha):
            for node in rng.permutation(count):
                node = int(node)
                self._reinsert(node, pass_alpha)

    def _reinsert(self, node: int, alpha: float) -> None:
        query = self.graph.vector(node)
        assert self._medoid is not None
        entry_dist = self.kernel.one(query, self.graph.vector(self._medoid))
        visited = search_layer(self.graph, self.kernel, query,
                               [(entry_dist, self._medoid)],
                               self.ef_construction, 0)
        pool = {cand: dist for dist, cand in visited if cand != node}
        for neighbor in self.graph.neighbors(node, 0):
            if neighbor not in pool and neighbor != node:
                pool[neighbor] = self.kernel.one(
                    query, self.graph.vector(neighbor))
        kept = self._robust_prune(node, pool, alpha)
        self.graph.set_neighbors(node, 0, kept)
        for neighbor in kept:
            back = self.graph.neighbors(neighbor, 0)
            if node not in back:
                back.append(node)
                if len(back) > self.r:
                    neighbor_vec = self.graph.vector(neighbor)
                    neighbor_pool = {
                        other: self.kernel.one(
                            neighbor_vec, self.graph.vector(other))
                        for other in back}
                    self.graph.set_neighbors(
                        neighbor, 0,
                        self._robust_prune(neighbor, neighbor_pool,
                                           alpha))

    def _robust_prune(self, node: int, pool: "dict[int, float]",
                      alpha: float) -> list[int]:
        """Keep the closest candidate, discard alpha-dominated ones,
        repeat until ``r`` neighbours are kept."""
        remaining = sorted((dist, cand) for cand, dist in pool.items()
                           if cand != node)
        kept: list[int] = []
        while remaining and len(kept) < self.r:
            dist_to_node, chosen = remaining.pop(0)
            kept.append(chosen)
            if not remaining:
                break
            chosen_vec = self.graph.vector(chosen)
            survivors = []
            candidates = [cand for _, cand in remaining]
            to_chosen = self.kernel.many(
                chosen_vec, self.graph.vectors[candidates])
            for (dist, cand), chord in zip(remaining,
                                           to_chosen.tolist()):
                if alpha * chord > dist:
                    survivors.append((dist, cand))
            remaining = survivors
        return kept

    # ------------------------------------------------------------------
    def search(self, query: np.ndarray, k: int,
               ef: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` beam search from the medoid."""
        if self._medoid is None:
            raise EmptyIndexError("search on empty Vamana index")
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        effective_ef = max(ef if ef is not None else 2 * k, k)
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        entry_dist = self.kernel.one(query,
                                     self.graph.vector(self._medoid))
        candidates = search_layer(self.graph, self.kernel, query,
                                  [(entry_dist, self._medoid)],
                                  effective_ef, 0)
        top = knn_from_candidates(candidates, k)
        return (np.array([self.labels[node] for _, node in top],
                         dtype=np.int64),
                np.array([dist for dist, _ in top], dtype=np.float32))

    def reset_compute_counter(self) -> int:
        """Zero the distance counter; returns the old value."""
        return self.kernel.reset_counter()

    @property
    def compute_count(self) -> int:
        """Distance evaluations since the last reset."""
        return self.kernel.num_evaluations
