"""Scheme-to-policy mapping."""

from __future__ import annotations

from repro.core.baselines import Scheme, policy_for


def test_naive_disables_everything():
    policy = policy_for(Scheme.NAIVE)
    assert not policy.deduplicate_batch
    assert not policy.use_cluster_cache
    assert not policy.doorbell_batching


def test_no_doorbell_keeps_cache_and_dedup():
    policy = policy_for(Scheme.NO_DOORBELL)
    assert policy.deduplicate_batch
    assert policy.use_cluster_cache
    assert not policy.doorbell_batching


def test_full_scheme_enables_all():
    policy = policy_for(Scheme.DHNSW)
    assert policy.deduplicate_batch
    assert policy.use_cluster_cache
    assert policy.doorbell_batching


def test_every_scheme_has_a_policy():
    for scheme in Scheme:
        assert policy_for(scheme) is not None


def test_scheme_values_are_stable_identifiers():
    assert Scheme.NAIVE.value == "naive-d-hnsw"
    assert Scheme.NO_DOORBELL.value == "d-hnsw-no-doorbell"
    assert Scheme.DHNSW.value == "d-hnsw"
