"""The front door: an event loop coalescing requests into engine waves.

:class:`FrontDoor` sits between independently arriving single-query
requests and a :class:`~repro.core.client.DHnswClient`.  It runs on the
client's :class:`~repro.rdma.clock.SimClock` — the same timeline every
RDMA verb and compute charge advances — so queue delay, batching delay,
and service time compose into one honest end-to-end latency per request.

The loop alternates between exactly two event kinds: the next arrival,
and the instant the pending wave becomes due (oldest wait hits
``max_wait_us``, or ``max_batch`` fills at an arrival).  Dispatch calls
``search_batch`` once per ``(k, ef)`` group, which advances the clock by
the wave's service time; arrivals that land "during" service simply queue
with their original timestamps, so backlog and queue delay emerge from
the simulation rather than being modelled.

Determinism contract: admission is charged at *arrival* timestamps (not
dispatch), DRR order is a function of the arrival sequence, and the
engine is deterministic — so the same requests + the same seed replay the
identical schedule, wave for wave.  Answers are bit-identical to calling
``search_batch`` directly on the same queries (wave composition only
changes *when* clusters are fetched, never what a query answers), which
``benchmarks/perf/bench_frontdoor.py`` gates.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from typing import Mapping, Sequence

import numpy as np

from repro.core.config import FrontDoorConfig
from repro.frontdoor.admission import (AdmissionController,
                                       DeficitRoundRobin, TenantPolicy)
from repro.frontdoor.batch_former import BatchFormer, FormedWave
from repro.frontdoor.loadgen import ClosedLoopSession
from repro.frontdoor.request import Request, RequestOutcome, RequestStatus
from repro.frontdoor.scheduler import SloScheduler

__all__ = ["FrontDoor", "LoadReport", "TenantReport", "WaveRecord"]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted values (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return float(sorted_values[min(rank, len(sorted_values)) - 1])


@dataclasses.dataclass(frozen=True)
class WaveRecord:
    """One wave as it actually executed — the unit of schedule replay."""

    wave_id: int
    formed_us: float
    request_ids: tuple[int, ...]
    #: One entry per engine call: (k, ef, request count), in EDF order.
    groups: tuple[tuple[int, int, int], ...]
    shed_ids: tuple[int, ...]
    degraded: bool
    #: Simulated time the engine spent on the wave (all groups).
    service_us: float
    clusters_fetched: int

    @property
    def occupancy(self) -> int:
        return len(self.request_ids) + len(self.shed_ids)


@dataclasses.dataclass(frozen=True)
class TenantReport:
    """One tenant's slice of a load report."""

    tenant: str
    offered: int
    served: int
    shed_admission: int
    shed_deadline: int
    degraded: int
    p50_queue_delay_us: float
    p99_queue_delay_us: float
    #: Fraction of all dispatched wave slots this tenant received.
    dispatch_share: float


@dataclasses.dataclass(frozen=True)
class LoadReport:
    """Everything one load-generation run produced, ready to assert on."""

    outcomes: tuple[RequestOutcome, ...]
    waves: tuple[WaveRecord, ...]
    #: [first arrival, last completion] span on the simulated clock.
    start_us: float
    end_us: float

    # -- counts ---------------------------------------------------------
    @property
    def offered(self) -> int:
        return len(self.outcomes)

    def _count(self, status: RequestStatus) -> int:
        return sum(1 for o in self.outcomes if o.status is status)

    @property
    def served(self) -> int:
        return sum(1 for o in self.outcomes if o.status.answered)

    @property
    def degraded(self) -> int:
        return self._count(RequestStatus.DEGRADED)

    @property
    def shed_admission(self) -> int:
        return self._count(RequestStatus.SHED_ADMISSION)

    @property
    def shed_deadline(self) -> int:
        return self._count(RequestStatus.SHED_DEADLINE)

    @property
    def duration_us(self) -> float:
        return max(self.end_us - self.start_us, 0.0)

    @property
    def throughput_qps(self) -> float:
        """Answered queries per simulated second over the run's span."""
        if self.duration_us <= 0.0:
            return float("inf") if self.served else 0.0
        return self.served / (self.duration_us / 1e6)

    # -- latency --------------------------------------------------------
    def queue_delay_percentiles(self) -> dict[str, float]:
        """p50/p99/p999 of queue delay across answered requests."""
        delays = sorted(o.queue_delay_us for o in self.outcomes
                        if o.status.answered)
        return {"p50": _percentile(delays, 0.50),
                "p99": _percentile(delays, 0.99),
                "p999": _percentile(delays, 0.999)}

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p99/p999 of end-to-end latency across answered requests."""
        latencies = sorted(o.latency_us for o in self.outcomes
                           if o.status.answered)
        return {"p50": _percentile(latencies, 0.50),
                "p99": _percentile(latencies, 0.99),
                "p999": _percentile(latencies, 0.999)}

    def latency_histogram(self, bin_us: float = 500.0,
                          num_bins: int = 64) -> tuple[int, ...]:
        """Fixed-bucket end-to-end latency histogram (last bin overflows).

        Histograms, not just percentiles, are what the determinism gate
        compares: two runs with equal p99s can still differ — equal
        histograms (plus equal schedules) cannot, short of reordering
        within a bucket.
        """
        counts = [0] * num_bins
        for outcome in self.outcomes:
            if not outcome.status.answered:
                continue
            index = min(int(outcome.latency_us / bin_us), num_bins - 1)
            counts[index] += 1
        return tuple(counts)

    # -- batching -------------------------------------------------------
    @property
    def mean_occupancy(self) -> float:
        """Mean requests per wave (how full the batch former ran)."""
        if not self.waves:
            return 0.0
        return sum(w.occupancy for w in self.waves) / len(self.waves)

    @property
    def max_occupancy(self) -> int:
        return max((w.occupancy for w in self.waves), default=0)

    # -- per-tenant -----------------------------------------------------
    def tenants(self) -> list[TenantReport]:
        """Per-tenant accounting, tenants in first-offered order."""
        order: list[str] = []
        grouped: dict[str, list[RequestOutcome]] = {}
        for outcome in self.outcomes:
            tenant = outcome.request.tenant
            if tenant not in grouped:
                grouped[tenant] = []
                order.append(tenant)
            grouped[tenant].append(outcome)
        total_dispatched = sum(1 for o in self.outcomes
                               if o.status.answered)
        reports = []
        for tenant in order:
            outcomes = grouped[tenant]
            delays = sorted(o.queue_delay_us for o in outcomes
                            if o.status.answered)
            served = len(delays)
            reports.append(TenantReport(
                tenant=tenant,
                offered=len(outcomes),
                served=served,
                shed_admission=sum(
                    1 for o in outcomes
                    if o.status is RequestStatus.SHED_ADMISSION),
                shed_deadline=sum(
                    1 for o in outcomes
                    if o.status is RequestStatus.SHED_DEADLINE),
                degraded=sum(1 for o in outcomes
                             if o.status is RequestStatus.DEGRADED),
                p50_queue_delay_us=_percentile(delays, 0.50),
                p99_queue_delay_us=_percentile(delays, 0.99),
                dispatch_share=(served / total_dispatched
                                if total_dispatched else 0.0),
            ))
        return reports

    # -- replay ---------------------------------------------------------
    def schedule_signature(self) -> tuple:
        """A hashable transcript of every scheduling decision.

        Two runs over the same arrival sequence and seed must produce
        equal signatures — the determinism contract the benchmark and
        the hypothesis suite assert.  Timestamps are rounded to the
        nanosecond to absorb float printing, not float arithmetic (the
        same operations run in the same order, so even exact equality
        holds; rounding just keeps the signature stable if a NumPy
        version changes summation order inside the engine).
        """
        return tuple(
            (w.wave_id, round(w.formed_us, 3), w.request_ids, w.groups,
             w.shed_ids, w.degraded)
            for w in self.waves)


class FrontDoor:
    """Multi-tenant request layer in front of one ``DHnswClient``."""

    def __init__(self, client,
                 config: FrontDoorConfig | None = None,
                 tenants: Mapping[str, TenantPolicy] | None = None) -> None:
        self.client = client
        self.config = config if config is not None else FrontDoorConfig()
        self.tenants = dict(tenants) if tenants is not None else {}
        self.clock = client.node.clock
        self.admission = AdmissionController(
            self.tenants, self.config.default_rate_qps,
            self.config.default_burst)
        self.former = BatchFormer(
            self.config,
            DeficitRoundRobin(self.config.drr_quantum, self.tenants,
                              self.config.default_weight))
        self.scheduler = SloScheduler(self.config,
                                      client.engine.resolve_ef)
        self._wave_counter = 0

    # -- request intake --------------------------------------------------
    def tenant_slo_us(self, tenant: str) -> float:
        """Deadline budget for ``tenant`` (policy override or default)."""
        policy = self.tenants.get(tenant)
        if policy is not None and policy.slo_us is not None:
            return policy.slo_us
        return self.config.slo_us

    def _admit(self, request: Request,
               outcomes: dict[int, RequestOutcome]) -> None:
        """Admission-check one arrival; queue it or shed it on the spot."""
        if self.admission.admit(request):
            self.former.offer(request)
        else:
            outcomes[request.request_id] = RequestOutcome(
                request=request, status=RequestStatus.SHED_ADMISSION,
                dispatch_us=float("nan"), complete_us=request.arrival_us,
                wave_id=-1, ef_used=0)

    # -- wave dispatch ----------------------------------------------------
    def _dispatch_wave(self, outcomes: dict[int, RequestOutcome],
                       waves: list[WaveRecord]) -> list[RequestOutcome]:
        """Form and execute one wave; returns the wave's outcomes."""
        now = self.clock.now_us
        wave = self.former.form(now, self._wave_counter)
        self._wave_counter += 1
        plan = self.scheduler.plan(wave, backlog=self.former.pending)

        produced: list[RequestOutcome] = []
        for request in plan.shed:
            outcome = RequestOutcome(
                request=request, status=RequestStatus.SHED_DEADLINE,
                dispatch_us=wave.formed_us, complete_us=now,
                wave_id=wave.wave_id, ef_used=0)
            outcomes[request.request_id] = outcome
            produced.append(outcome)

        service_start = now
        fetched = 0
        status = (RequestStatus.DEGRADED if plan.degraded
                  else RequestStatus.OK)
        for group in plan.groups:
            queries = np.stack([r.query for r in group.requests])
            batch = self.client.search_batch(queries, group.k,
                                             ef_search=group.ef)
            complete = self.clock.now_us
            fetched += batch.clusters_fetched
            self._attribute_queue_stage(batch, wave, group.requests)
            for request, result in zip(group.requests, batch.results):
                outcome = RequestOutcome(
                    request=request, status=status,
                    dispatch_us=wave.formed_us, complete_us=complete,
                    wave_id=wave.wave_id, ef_used=group.ef,
                    ids=result.ids, distances=result.distances)
                outcomes[request.request_id] = outcome
                produced.append(outcome)

        waves.append(WaveRecord(
            wave_id=wave.wave_id, formed_us=wave.formed_us,
            request_ids=tuple(r.request_id for group in plan.groups
                              for r in group.requests),
            groups=tuple((g.k, g.ef, len(g.requests))
                         for g in plan.groups),
            shed_ids=tuple(r.request_id for r in plan.shed),
            degraded=plan.degraded,
            service_us=self.clock.now_us - service_start,
            clusters_fetched=fetched))
        return produced

    def _attribute_queue_stage(self, batch, wave: FormedWave,
                               members: tuple[Request, ...]) -> None:
        """Record the wave's queueing as a first-class trace stage.

        The engine's trace covers route→plan→fetch→decode→compute→merge;
        the front door prepends the time its members spent waiting for
        the wave to form, so ``telemetry.render_trace`` shows the full
        request path with queueing first.  Observation only — the clock
        already advanced past these waits.
        """
        trace = getattr(batch, "trace", None)
        if trace is None:
            return
        report = trace.ensure_stage_first("queue")
        report.calls += len(members)
        report.sim_us += sum(wave.formed_us - r.arrival_us
                             for r in members)

    # -- open loop --------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> LoadReport:
        """Serve a pre-generated (open-loop) arrival sequence to completion.

        ``requests`` must be sorted by ``arrival_us`` (load generators
        produce them that way); ties are served in sequence order.
        Arrivals are fixed in advance — queue delay under load comes out
        of the simulation, not out of the generator.
        """
        for earlier, later in zip(requests, requests[1:]):
            if later.arrival_us < earlier.arrival_us:
                raise ValueError(
                    "open-loop requests must be sorted by arrival_us")
        outcomes: dict[int, RequestOutcome] = {}
        waves: list[WaveRecord] = []
        index = 0
        total = len(requests)
        while index < total or self.former.pending:
            now = self.clock.now_us
            while index < total and requests[index].arrival_us <= now:
                self._admit(requests[index], outcomes)
                index += 1
            if self.former.ready(self.clock.now_us):
                self._dispatch_wave(outcomes, waves)
                continue
            next_arrival = (requests[index].arrival_us
                            if index < total else None)
            due = self.former.due_us()
            targets = [t for t in (next_arrival, due) if t is not None]
            if not targets:
                break
            self.clock.advance_to(min(targets))
            # Loop back: the drain admits a reached arrival, and a
            # waited-out batch budget makes ``ready`` true.
        return self._report(outcomes, waves, requests)

    # -- closed loop ------------------------------------------------------
    def run_closed_loop(self, sessions: Sequence[ClosedLoopSession],
                        first_request_id: int = 0) -> LoadReport:
        """Serve closed-loop sessions: each issues, waits, thinks, repeats.

        Every session keeps exactly one request in flight; its next query
        issues at ``completion + think_us``.  Sheds count as instant
        completions so a rate-limited tenant keeps pacing rather than
        deadlocking.  Throughput here is self-limiting — the classic
        closed-loop property — which makes it the right mode for
        measuring steady-state capacity.
        """
        # (issue_us, session_index, query_index): the tuple order makes
        # simultaneous issues deterministic.
        pending: list[tuple[float, int, int]] = [
            (session.start_us, index, 0)
            for index, session in enumerate(sessions)
            if len(session.queries)]
        heapq.heapify(pending)
        outcomes: dict[int, RequestOutcome] = {}
        waves: list[WaveRecord] = []
        by_request: dict[int, tuple[int, int]] = {}
        next_id = first_request_id
        all_requests: list[Request] = []

        def issue(issue_us: float, session_index: int,
                  query_index: int) -> None:
            nonlocal next_id
            session = sessions[session_index]
            request = Request(
                request_id=next_id, tenant=session.tenant,
                query=session.queries[query_index], k=session.k,
                arrival_us=max(issue_us, 0.0),
                slo_us=(session.slo_us if session.slo_us is not None
                        else self.tenant_slo_us(session.tenant)),
                ef_search=session.ef_search)
            next_id += 1
            by_request[request.request_id] = (session_index, query_index)
            all_requests.append(request)
            self._admit(request, outcomes)
            # An admission shed completes instantly: schedule the think.
            outcome = outcomes.get(request.request_id)
            if outcome is not None:
                schedule_next(outcome)

        def schedule_next(outcome: RequestOutcome) -> None:
            session_index, query_index = by_request[outcome.request.request_id]
            session = sessions[session_index]
            following = query_index + 1
            if following >= len(session.queries):
                return
            think = float(session.think_us[query_index])
            heapq.heappush(pending, (outcome.complete_us + think,
                                     session_index, following))

        while pending or self.former.pending:
            now = self.clock.now_us
            while pending and pending[0][0] <= now:
                issue_us, session_index, query_index = heapq.heappop(pending)
                issue(issue_us, session_index, query_index)
            if self.former.ready(self.clock.now_us):
                for outcome in self._dispatch_wave(outcomes, waves):
                    schedule_next(outcome)
                continue
            next_issue = pending[0][0] if pending else None
            due = self.former.due_us()
            targets = [t for t in (next_issue, due) if t is not None]
            if not targets:
                break
            self.clock.advance_to(min(targets))
        return self._report(outcomes, waves, all_requests)

    # -- reporting --------------------------------------------------------
    def _report(self, outcomes: dict[int, RequestOutcome],
                waves: list[WaveRecord],
                requests: Sequence[Request]) -> LoadReport:
        ordered = tuple(outcomes[r.request_id] for r in requests
                        if r.request_id in outcomes)
        start = min((r.arrival_us for r in requests), default=0.0)
        end = max((o.complete_us for o in ordered), default=start)
        return LoadReport(outcomes=ordered, waves=tuple(waves),
                          start_us=start, end_us=end)
