"""Cost-model arithmetic: the foundation of every latency number."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.rdma.network import CostModel


@pytest.fixture()
def model() -> CostModel:
    return CostModel(base_rtt_us=2.0, bandwidth_gbps=100.0,
                     pcie_us_per_wqe=0.3, doorbell_limit=4,
                     doorbell_split_penalty_us=1.0)


class TestBasics:
    def test_bytes_per_us(self, model):
        # 100 Gb/s = 12.5 GB/s = 12500 bytes/us.
        assert model.bytes_per_us == pytest.approx(12500.0)

    def test_read_time_includes_all_terms(self, model):
        assert model.read_us(12500) == pytest.approx(2.0 + 0.3 + 1.0)

    def test_zero_byte_read_is_rtt_plus_pcie(self, model):
        assert model.read_us(0) == pytest.approx(2.3)

    def test_write_equals_read(self, model):
        assert model.write_us(5000) == model.read_us(5000)

    def test_atomic_time(self, model):
        assert model.atomic_us() == pytest.approx(2.3)

    def test_negative_bytes_rejected(self, model):
        with pytest.raises(ValueError):
            model.transfer_us(-1)


class TestDoorbell:
    def test_rings_ceiling(self, model):
        assert model.doorbell_rings(1) == 1
        assert model.doorbell_rings(4) == 1
        assert model.doorbell_rings(5) == 2
        assert model.doorbell_rings(9) == 3

    def test_rings_rejects_nonpositive(self, model):
        with pytest.raises(ValueError):
            model.doorbell_rings(0)

    def test_empty_batch_is_free(self, model):
        assert model.doorbell_read_us([]) == 0.0

    def test_single_ring_cost(self, model):
        # 3 WQEs of 12500 B: 1 RTT + 3 PCIe + 3 us transfer.
        expected = 2.0 + 3 * 0.3 + 3.0
        assert model.doorbell_read_us([12500] * 3) == pytest.approx(expected)

    def test_split_batch_pays_penalty(self, model):
        # 5 WQEs with limit 4: 2 rings -> 2 RTTs + 1 split penalty.
        cost = model.doorbell_read_us([0] * 5)
        assert cost == pytest.approx(2 * 2.0 + 1.0 + 5 * 0.3)

    def test_doorbell_beats_individual_reads(self, model):
        sizes = [10_000] * 4
        individual = sum(model.read_us(size) for size in sizes)
        assert model.doorbell_read_us(sizes) < individual

    @settings(max_examples=50, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=0, max_value=1_000_000),
                          min_size=1, max_size=40))
    def test_doorbell_never_beats_pure_payload(self, sizes):
        model = CostModel(doorbell_limit=4)
        assert model.doorbell_read_us(sizes) >= model.transfer_us(sum(sizes))


class TestCompute:
    def test_linear_in_count_and_dim(self, model):
        one = model.compute_us(1, 128)
        assert model.compute_us(10, 128) == pytest.approx(10 * one)
        assert model.compute_us(1, 256) > one

    def test_zero_distances_free(self, model):
        assert model.compute_us(0, 128) == 0.0

    def test_negative_rejected(self, model):
        with pytest.raises(ValueError):
            model.compute_us(-1, 4)

    def test_deserialize_scales_with_bytes(self, model):
        assert model.deserialize_us(2048) == pytest.approx(
            2 * model.deserialize_us(1024))
        with pytest.raises(ValueError):
            model.deserialize_us(-1)


class TestSharedBy:
    def test_fair_share_divides_bandwidth(self, model):
        shared = model.shared_by(4)
        assert shared.bandwidth_gbps == pytest.approx(25.0)
        assert shared.base_rtt_us == model.base_rtt_us

    def test_one_sharer_is_identity(self, model):
        assert model.shared_by(1) == model

    def test_invalid_sharers(self, model):
        with pytest.raises(ConfigError):
            model.shared_by(0)


class TestValidation:
    def test_negative_constant_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(base_rtt_us=-1.0)

    def test_zero_doorbell_limit_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(doorbell_limit=0)
