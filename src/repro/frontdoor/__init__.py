"""The multi-tenant front door: a request layer over the serving engine.

Production vector search is millions of *independent single-query*
requests, not pre-formed batches.  This package closes that gap: a
deterministic, SimClock-driven event loop that coalesces arrivals into
waves under a latency budget (so the engine's doorbell batching and
cross-query cluster dedup earn their keep), enforces per-tenant
admission and weighted fairness, and dispatches SLO-aware — shedding
dead requests and degrading ``ef_search`` under overload, with every
downgrade accounted.

Layering: ``repro.frontdoor`` sits strictly *above* ``repro.core`` /
``repro.serving`` — it only ever talks to a ``DHnswClient``; it never
touches ``repro.transport`` or the RDMA substrate (enforced by
``tests/test_layering.py``).

Typical usage::

    from repro import Deployment, DHnswConfig
    from repro.frontdoor import (FrontDoor, FrontDoorConfig, TenantPolicy,
                                 make_requests, poisson_arrivals)

    deployment = Deployment(corpus, DHnswConfig(nprobe=4))
    door = FrontDoor(deployment.client(),
                     FrontDoorConfig(max_wait_us=2000, max_batch=64),
                     tenants={"free": TenantPolicy(weight=1, rate_qps=500),
                              "paid": TenantPolicy(weight=4)})
    rng = np.random.default_rng(0)
    requests = make_requests(poisson_arrivals(2000, 1000, rng), queries,
                             k=10, slo_us=50_000, rng=rng,
                             tenants=("free", "paid"))
    report = door.run(requests)
    print(report.queue_delay_percentiles(), report.throughput_qps)
"""

from repro.core.config import FrontDoorConfig
from repro.frontdoor.admission import (AdmissionController,
                                       DeficitRoundRobin, TenantPolicy,
                                       TokenBucket)
from repro.frontdoor.batch_former import BatchFormer, FormedWave
from repro.frontdoor.door import (FrontDoor, LoadReport, TenantReport,
                                  WaveRecord)
from repro.frontdoor.loadgen import (ClosedLoopSession, bursty_arrivals,
                                     diurnal_arrivals, make_requests,
                                     poisson_arrivals)
from repro.frontdoor.request import Request, RequestOutcome, RequestStatus
from repro.frontdoor.scheduler import (DispatchGroup, DispatchPlan,
                                       SloScheduler, calibrate_degraded_ef)

__all__ = [
    "AdmissionController",
    "BatchFormer",
    "ClosedLoopSession",
    "DeficitRoundRobin",
    "DispatchGroup",
    "DispatchPlan",
    "FormedWave",
    "FrontDoor",
    "FrontDoorConfig",
    "LoadReport",
    "Request",
    "RequestOutcome",
    "RequestStatus",
    "SloScheduler",
    "TenantPolicy",
    "TenantReport",
    "TokenBucket",
    "WaveRecord",
    "bursty_arrivals",
    "calibrate_degraded_ef",
    "diurnal_arrivals",
    "make_requests",
    "poisson_arrivals",
]
