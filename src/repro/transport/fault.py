"""Deterministic fault injection for transport verbs.

:class:`FaultInjectingTransport` wraps any :class:`~repro.transport.base.
Transport` and makes selected READ operations fail with typed errors from
:mod:`repro.errors`, charging the simulated time the failed attempt would
have burned.  Faults are *deterministic*: a :class:`FaultPlan` decides from
a seed (probability mode) or an explicit op-ordinal schedule, so a failing
run replays exactly.

Only READ-shaped verbs fault (``read``, ``read_batch``,
``read_batch_async``/``poll``).  WRITE and atomics pass through — the
serving read path is what the paper's recovery story is about, and keeping
mutations fault-free keeps remote state consistent across retries.

Fault semantics (simulated charges):

``TIMEOUT``
    No bytes move.  The armed per-op timeout elapses on the clock, then
    :class:`~repro.errors.TransportTimeoutError` is raised.
``PARTIAL_READ``
    Roughly half the requested bytes transfer before the completion timer
    fires (half the armed timeout is charged), then
    :class:`~repro.errors.PartialReadError` is raised.
``STALE_METADATA``
    The READ completes at full wire cost, but the payload's version check
    fails: :class:`~repro.errors.StaleReadError`.  Remote state is intact;
    a retry succeeds.
``CORRUPT_EXTENT``
    The READ completes at full wire cost, but the payload fails its
    integrity check: :class:`~repro.errors.CorruptedReadError`.
"""

from __future__ import annotations

import dataclasses
import enum
import random

from repro.errors import (
    ConfigError,
    CorruptedReadError,
    PartialReadError,
    StaleReadError,
    TransportTimeoutError,
)
from repro.transport.base import (
    PendingRead,
    ReadDescriptor,
    Transport,
    WriteDescriptor,
)

__all__ = ["FaultInjectingTransport", "FaultKind", "FaultPlan"]


class FaultKind(enum.Enum):
    """The failure modes a fault plan can inject."""

    TIMEOUT = "timeout"
    PARTIAL_READ = "partial_read"
    STALE_METADATA = "stale_metadata"
    CORRUPT_EXTENT = "corrupt_extent"


@dataclasses.dataclass
class FaultPlan:
    """Decides which READ operations fault, deterministically.

    Two modes compose:

    * ``schedule`` maps a 0-based READ-op ordinal (each ``read`` /
      ``read_batch`` / ``read_batch_async`` call counts once, in issue
      order) to the :class:`FaultKind` injected on that op.
    * ``fault_rate`` draws per-op from ``random.Random(seed)``; when the
      draw fires, the kind is chosen uniformly from ``kinds``.

    ``max_faults`` caps total injections across both modes.
    """

    seed: int = 0
    fault_rate: float = 0.0
    kinds: tuple[FaultKind, ...] = tuple(FaultKind)
    schedule: dict[int, FaultKind] = dataclasses.field(default_factory=dict)
    max_faults: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ConfigError(
                f"fault_rate must be in [0, 1], got {self.fault_rate}")
        if self.fault_rate > 0.0 and not self.kinds:
            raise ConfigError("fault_rate > 0 requires a non-empty kinds")
        if self.max_faults is not None and self.max_faults < 0:
            raise ConfigError(
                f"max_faults must be >= 0, got {self.max_faults}")
        self._rng = random.Random(self.seed)
        self._op_ordinal = 0
        self._injected = 0

    @property
    def ops_seen(self) -> int:
        """READ operations the plan has adjudicated so far."""
        return self._op_ordinal

    @property
    def faults_injected(self) -> int:
        """Faults the plan has fired so far."""
        return self._injected

    def next_fault(self) -> FaultKind | None:
        """Adjudicate the next READ op; return a kind to inject or None.

        Consumes exactly one ordinal and one RNG draw per call (when in
        probability mode), so the decision stream is a pure function of
        the op sequence.
        """
        ordinal = self._op_ordinal
        self._op_ordinal += 1
        kind = self.schedule.get(ordinal)
        if kind is None and self.fault_rate > 0.0:
            if self._rng.random() < self.fault_rate:
                kind = self.kinds[self._rng.randrange(len(self.kinds))]
        if kind is None:
            return None
        if self.max_faults is not None and self._injected >= self.max_faults:
            return None
        self._injected += 1
        return kind


class FaultInjectingTransport:
    """A transport decorator that injects deterministic READ faults.

    ``timeout_us`` is the armed per-op timeout charged when a ``TIMEOUT``
    fault fires.  A ``PARTIAL_READ`` charges half the armed timeout (the
    early-firing completion timer detects the tear).  Stale/corrupt faults
    let the READ execute at full wire cost through the inner transport and
    fail its validation afterwards, so a retry observes intact remote
    state and succeeds.
    """

    def __init__(self, inner: Transport, plan: FaultPlan,
                 timeout_us: float = 1_000.0) -> None:
        if timeout_us <= 0.0:
            raise ConfigError(f"timeout_us must be > 0, got {timeout_us}")
        self.inner = inner
        self.plan = plan
        self.timeout_us = timeout_us
        # Async faults are decided at issue time but surfaced at poll time,
        # mirroring how a real CQ reports the error completion.
        self._pending_faults: dict[int, tuple[FaultKind, int]] = {}

    # -- bookkeeping ----------------------------------------------------
    @property
    def clock(self):
        return self.inner.clock

    @property
    def stats(self):
        return self.inner.stats

    # -- fault machinery ------------------------------------------------
    def _charge_partial(self, nbytes: int) -> float:
        """Charge a torn READ of ``nbytes``; return the bytes that landed."""
        received = nbytes // 2
        # A torn DMA is detected when the completion timer fires early;
        # charge half the armed timeout rather than probing the inner cost
        # model (which the Transport protocol deliberately does not expose).
        wasted = self.timeout_us / 2.0
        self.clock.advance(wasted)
        self.stats.record_fault(wasted)
        return float(received)

    def _fail_sync(self, kind: FaultKind, op: str, nbytes: int):
        if kind is FaultKind.TIMEOUT:
            self.clock.advance(self.timeout_us)
            self.stats.record_fault(self.timeout_us)
            raise TransportTimeoutError(
                f"{op} timed out after {self.timeout_us:.0f} us "
                f"(simulated fault)", op=op)
        if kind is FaultKind.PARTIAL_READ:
            received = int(self._charge_partial(nbytes))
            raise PartialReadError(
                f"{op} returned {received} of {nbytes} bytes "
                f"(simulated torn DMA)", op=op, expected=nbytes,
                received=received)
        raise AssertionError(kind)  # stale/corrupt handled post-read

    def _fail_async(self, kind: FaultKind, op: str, nbytes: int,
                    issued_at_us: float):
        """Surface a timeout/torn fault on a polled async READ.

        The timer armed at *issue*, so only the part of the window that
        has not already elapsed under the caller's compute is charged —
        the same issue-timeline accounting a clean async READ gets.
        """
        if kind is FaultKind.TIMEOUT:
            waited = self.clock.advance_to(issued_at_us + self.timeout_us)
            self.stats.record_fault(waited)
            raise TransportTimeoutError(
                f"{op} timed out after {self.timeout_us:.0f} us "
                f"(simulated fault)", op=op)
        received = nbytes // 2
        waited = self.clock.advance_to(issued_at_us + self.timeout_us / 2.0)
        self.stats.record_fault(waited)
        raise PartialReadError(
            f"{op} returned {received} of {nbytes} bytes "
            f"(simulated torn DMA)", op=op, expected=nbytes,
            received=received)

    def _fail_post_read(self, kind: FaultKind, op: str) -> None:
        """Raise for faults that are detected *after* a completed READ."""
        self.stats.record_fault()
        if kind is FaultKind.STALE_METADATA:
            raise StaleReadError(
                f"{op} observed remote metadata mid-update "
                f"(simulated stale read)", op=op)
        raise CorruptedReadError(
            f"{op} payload failed integrity check (simulated bit flip)",
            op=op)

    # -- synchronous verbs ----------------------------------------------
    def read(self, rkey: int, addr: int,
             length: int) -> "memoryview | bytes":
        kind = self.plan.next_fault()
        if kind in (FaultKind.TIMEOUT, FaultKind.PARTIAL_READ):
            self._fail_sync(kind, "READ", length)
        payload = self.inner.read(rkey, addr, length)
        if kind is not None:
            self._fail_post_read(kind, "READ")
        return payload

    def write(self, rkey: int, addr: int, data) -> None:
        self.inner.write(rkey, addr, data)

    def cas(self, rkey: int, addr: int, expected: int, desired: int) -> int:
        return self.inner.cas(rkey, addr, expected, desired)

    def faa(self, rkey: int, addr: int, delta: int) -> int:
        return self.inner.faa(rkey, addr, delta)

    # -- batched verbs --------------------------------------------------
    def read_batch(self, descriptors: list[ReadDescriptor],
                   doorbell: bool = True) -> "list[memoryview | bytes]":
        kind = self.plan.next_fault()
        total = sum(d.length for d in descriptors)
        if kind in (FaultKind.TIMEOUT, FaultKind.PARTIAL_READ):
            self._fail_sync(kind, "READ_BATCH", total)
        payloads = self.inner.read_batch(descriptors, doorbell=doorbell)
        if kind is not None:
            self._fail_post_read(kind, "READ_BATCH")
        return payloads

    def write_batch(self, descriptors: list[WriteDescriptor],
                    doorbell: bool = True) -> None:
        self.inner.write_batch(descriptors, doorbell=doorbell)

    def read_batch_async(self, descriptors: list[ReadDescriptor],
                         doorbell: bool = True) -> PendingRead:
        kind = self.plan.next_fault()
        pending = self.inner.read_batch_async(descriptors, doorbell=doorbell)
        if kind is not None:
            total = sum(d.length for d in descriptors)
            self._pending_faults[id(pending)] = (kind, total)
        return pending

    def poll(self, pending: PendingRead) -> "list[memoryview | bytes]":
        fault = self._pending_faults.pop(id(pending), None)
        if fault is None:
            return self.inner.poll(pending)
        kind, total = fault
        if kind in (FaultKind.TIMEOUT, FaultKind.PARTIAL_READ):
            # The error completion carries no data: the inner CQE is
            # abandoned (no bytes are accounted, and its copy-on-write
            # guard is released) and only the not-yet-elapsed part of the
            # armed timeout is charged.  The NIC channel stays busy with
            # the dead WQE, which is what a real timed-out READ leaves
            # behind.
            issued_at = pending.issued_at_us
            self.inner.abandon(pending)
            self._fail_async(kind, "ASYNC_READ", total, issued_at)
        self.inner.poll(pending)  # full wire charge; payload discarded
        self._fail_post_read(kind, "ASYNC_READ")
        raise AssertionError("unreachable")

    def abandon(self, pending: PendingRead) -> None:
        self._pending_faults.pop(id(pending), None)
        self.inner.abandon(pending)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        self.inner.close()
