"""Validation and derived values of :class:`HnswParams`."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.hnsw.params import HnswParams


class TestValidation:
    def test_m_lower_bound(self):
        with pytest.raises(ConfigError, match="m must be >= 2"):
            HnswParams(m=1)

    def test_ef_construction_lower_bound(self):
        with pytest.raises(ConfigError, match="ef_construction"):
            HnswParams(ef_construction=0)

    def test_m0_must_cover_m(self):
        with pytest.raises(ConfigError, match="m0"):
            HnswParams(m=16, m0=8)

    def test_negative_max_level(self):
        with pytest.raises(ConfigError, match="max_level"):
            HnswParams(max_level=-1)

    def test_nonpositive_level_mult(self):
        with pytest.raises(ConfigError, match="level_mult"):
            HnswParams(level_mult=0.0)


class TestDerivedValues:
    def test_default_m0_doubles_m(self):
        assert HnswParams(m=12).effective_m0 == 24

    def test_explicit_m0_wins(self):
        assert HnswParams(m=12, m0=40).effective_m0 == 40

    def test_default_level_mult(self):
        params = HnswParams(m=16)
        assert params.effective_level_mult == pytest.approx(
            1.0 / math.log(16))

    def test_max_degree_per_level(self):
        params = HnswParams(m=8)
        assert params.max_degree(0) == 16
        assert params.max_degree(1) == 8
        assert params.max_degree(5) == 8

    def test_replace_preserves_others(self):
        params = HnswParams(m=8, ef_construction=50)
        changed = params.replace(ef_construction=99)
        assert changed.ef_construction == 99
        assert changed.m == 8
        assert params.ef_construction == 50  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            HnswParams().m = 3  # type: ignore[misc]
