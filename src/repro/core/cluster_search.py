"""The per-cluster search task of the serving engine.

``search_cluster_entry`` is a *pure* function over a cached cluster entry
and a block of query vectors: it runs the sub-HNSW beam search plus the
overflow-record scan and returns private per-query candidate arrays, never
touching shared state.  That purity is what lets the pipelined executor run
one task per (cluster, query-group) concurrently — inline, on a
``ThreadPoolExecutor``, or in a worker process — with bit-identical results
at every worker count: the task's output depends only on its inputs, and
the caller merges outputs in deterministic cluster order.

Semantics mirror the pre-PR-4 ``DHnswClient._search_cluster_batch``
exactly, including the distance-evaluation accounting the latency model
charges: tombstoned/superseded ids are masked out of graph candidates and
live overflow records are scored against every query.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.cache import CachedCluster
from repro.layout.serializer import OverflowRecord

__all__ = ["ClusterSearchResult", "replay_overflow", "search_cluster_entry"]


@dataclasses.dataclass
class ClusterSearchResult:
    """Output of one cluster search over a group of queries.

    ``gids[i]`` / ``dists[i]`` are the candidates for the i-th query row of
    the block the task was given (the caller re-maps rows to batch-global
    query indices).  Duplicate gids within a row are allowed — the merger
    keeps the minimum distance.
    """

    evals: int
    gids: list[np.ndarray]
    dists: list[np.ndarray]


def replay_overflow(records: list[OverflowRecord]
                    ) -> dict[int, OverflowRecord | None]:
    """Fold overflow records (slot order) into per-id final state.

    ``state[gid] is None`` means the id is tombstoned; a live record
    supersedes any earlier record *and* any base-graph vector with the
    same id.
    """
    state: dict[int, OverflowRecord | None] = {}
    for record in records:
        state[record.global_id] = None if record.tombstone else record
    return state


def search_cluster_entry(entry: CachedCluster, queries: np.ndarray,
                         k: int, ef: int) -> ClusterSearchResult:
    """Search one cluster (graph + overflow) for a block of queries.

    The overflow replay, live-record matrix, and (on the compiled engine)
    the CSR compilation are computed once for the whole block.  Distance
    evaluations are read off the entry's kernel counter, so they match the
    serial engine exactly; with one task per cluster no two concurrent
    tasks share a kernel.
    """
    kernel = entry.index.kernel
    evals_before = kernel.num_evaluations
    state = replay_overflow(entry.overflow)
    live = [record for record in state.values() if record is not None]
    matrix = np.stack([record.vector for record in live]) if live else None
    live_gids = (np.array([record.global_id for record in live],
                          dtype=np.int64) if live else None)
    dead_gids = (np.fromiter(state.keys(), dtype=np.int64, count=len(state))
                 if state else None)
    labels = np.asarray(entry.index.labels, dtype=np.int64)
    num_queries = queries.shape[0]
    if len(entry.index) > 0:
        candidate_lists = entry.index.search_candidates_batch(queries, k, ef)
    else:
        candidate_lists = [[] for _ in range(num_queries)]

    out_gids: list[np.ndarray] = []
    out_dists: list[np.ndarray] = []
    for row, candidates in enumerate(candidate_lists):
        if candidates:
            dists = np.fromiter((dist for dist, _ in candidates),
                                dtype=np.float64, count=len(candidates))
            nodes = np.fromiter((node for _, node in candidates),
                                dtype=np.int64, count=len(candidates))
            gids = labels[nodes]
            if dead_gids is not None:
                keep = ~np.isin(gids, dead_gids)
                gids, dists = gids[keep], dists[keep]
        else:
            gids = np.empty(0, dtype=np.int64)
            dists = np.empty(0, dtype=np.float64)
        if matrix is not None:
            overflow_dists = np.asarray(kernel.many(queries[row], matrix),
                                        dtype=np.float64)
            gids = np.concatenate([gids, live_gids])
            dists = np.concatenate([dists, overflow_dists])
        out_gids.append(gids)
        out_dists.append(dists)
    return ClusterSearchResult(evals=kernel.num_evaluations - evals_before,
                               gids=out_gids, dists=out_dists)
