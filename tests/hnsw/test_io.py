"""Standalone HNSW file persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.hnsw import HnswIndex, HnswParams, load_index, save_index


@pytest.fixture(scope="module")
def index():
    built = HnswIndex(8, HnswParams(m=8, ef_construction=40, seed=4))
    built.add(np.random.default_rng(4).standard_normal(
        (300, 8)).astype(np.float32), labels=list(range(1000, 1300)))
    return built


def test_roundtrip_answers_identically(index, tmp_path):
    path = tmp_path / "index.dhn"
    written = save_index(index, path)
    assert path.stat().st_size == written
    restored = load_index(path)
    for query in np.random.default_rng(5).standard_normal(
            (10, 8)).astype(np.float32):
        np.testing.assert_array_equal(restored.search(query, 5, ef=32)[0],
                                      index.search(query, 5, ef=32)[0])


def test_restored_index_can_grow(index, tmp_path):
    path = tmp_path / "index.dhn"
    save_index(index, path)
    restored = load_index(path, HnswParams(m=8, ef_construction=40))
    restored.add_one(np.zeros(8, dtype=np.float32), label=9999)
    labels, dists = restored.search(np.zeros(8, dtype=np.float32), 1,
                                    ef=16)
    assert labels[0] == 9999
    restored.graph.check_invariants()


def test_labels_survive(index, tmp_path):
    path = tmp_path / "index.dhn"
    save_index(index, path)
    assert load_index(path).labels == index.labels


def test_corrupt_file_raises_serialization_error(tmp_path):
    path = tmp_path / "bad.dhn"
    path.write_bytes(b"definitely not an index")
    with pytest.raises(SerializationError):
        load_index(path)


def test_empty_index_roundtrip(tmp_path):
    empty = HnswIndex(4, HnswParams(m=4))
    path = tmp_path / "empty.dhn"
    save_index(empty, path)
    assert len(load_index(path)) == 0
