"""Tier accounting: EWMA access frequencies, promotion hysteresis,
pinned-entry protection.

The cache's frequency tracker and the tier store's rebalance loop are
the control plane of the hot/cold split — these tests pin their exact
semantics (scores under the lock, no ping-pong under alternating
access, never demoting an entry a worker thread is searching).
"""

from __future__ import annotations

import dataclasses
import threading

import numpy as np
import pytest

from repro.cluster import Deployment
from repro.core import DHnswConfig, DHnswClient
from repro.core.cache import CachedCluster, ClusterCache
from repro.datasets.synthetic import make_clustered
from repro.errors import ConfigError
from repro.hnsw import HnswIndex, HnswParams
from repro.layout.group_layout import cluster_read_extent


class TestEwmaFrequency:
    def test_first_access_scores_one(self):
        cache = ClusterCache(4)
        assert cache.record_access(3, 1000.0) == 1.0

    def test_absent_cluster_reads_zero(self):
        cache = ClusterCache(4)
        assert cache.frequency(9, 0.0) == 0.0

    def test_same_instant_accumulates_exactly(self):
        cache = ClusterCache(4)
        for _ in range(10):
            cache.record_access(1, 500.0)
        assert cache.frequency(1, 500.0) == 10.0

    def test_halflife_decay(self):
        cache = ClusterCache(4, freq_halflife_us=1000.0)
        cache.record_access(1, 0.0)
        # One halflife later the old score is worth exactly half.
        assert cache.frequency(1, 1000.0) == pytest.approx(0.5)
        assert cache.record_access(1, 1000.0) == pytest.approx(1.5)

    def test_frequency_read_does_not_mutate(self):
        cache = ClusterCache(4, freq_halflife_us=1000.0)
        cache.record_access(1, 0.0)
        cache.frequency(1, 3000.0)
        # The stored (score, last) pair is untouched by reads: a second
        # read at the same horizon gives the same answer.
        assert cache.frequency(1, 3000.0) == pytest.approx(0.125)

    def test_stale_timestamp_never_inflates(self):
        # Out-of-order timestamps (pipelined waves) must not decay
        # backwards or move last-access earlier.
        cache = ClusterCache(4, freq_halflife_us=1000.0)
        cache.record_access(1, 2000.0)
        cache.record_access(1, 1000.0)   # late arrival
        assert cache.frequency(1, 2000.0) == 2.0

    def test_validation(self):
        with pytest.raises(ConfigError, match="halflife"):
            ClusterCache(4, freq_halflife_us=0.0)

    def test_counters_exact_under_contention(self):
        # Many threads bumping the same cluster at one instant: the score
        # is += 1 under the lock, so the total must be exact, not
        # approximately N.
        cache = ClusterCache(4)
        threads = [threading.Thread(
            target=lambda: [cache.record_access(7, 100.0)
                            for _ in range(200)]) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.frequency(7, 100.0) == 8 * 200

    def test_survives_eviction(self):
        # The promotion signal must outlive residency: evicting the entry
        # does not forget its access history.
        cache = ClusterCache(1)
        index = HnswIndex(4, HnswParams(m=4))
        cache.record_access(1, 0.0)
        cache.put(CachedCluster(1, index, [], 0, 1, nbytes=10))
        cache.put(CachedCluster(2, index, [], 0, 1, nbytes=10))  # evicts 1
        assert 1 not in cache
        assert cache.frequency(1, 0.0) == 1.0


# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiered_world():
    rng = np.random.default_rng(11)
    corpus = make_clustered(2500, 24, num_clusters=10, cluster_std=0.05,
                            rng=rng)
    config = DHnswConfig(num_representatives=10, nprobe=3, seed=4,
                         cold_tier="pq", tier_hysteresis=2.0)
    deployment = Deployment(corpus, config, num_compute_instances=1,
                            simulate_link_contention=False)
    return corpus, config, deployment


def make_tiered_client(world, budget_bytes):
    _, config, deployment = world
    tiered = dataclasses.replace(config,
                                 hot_tier_budget_bytes=budget_bytes)
    return DHnswClient(deployment.layout, deployment.meta, tiered,
                       cost_model=deployment.effective_cost_model,
                       name="tier-test")


def cluster_size(client, cid):
    return cluster_read_extent(client.metadata, cid)[1]


def touch(client, cid):
    """One batch's worth of access: EWMA bump + cold-demand mark."""
    tier = client.tier_store
    client.cache.record_access(cid, client.node.clock.now_us)
    tier._accessed_cold.add(cid)


class TestPromotionHysteresis:
    def test_alternating_access_does_not_ping_pong(self, tiered_world):
        client = make_tiered_client(tiered_world, None)
        # Budget fits exactly one of the two clusters.
        a, b = 0, 1
        budget = max(cluster_size(client, a), cluster_size(client, b))
        client = make_tiered_client(tiered_world, budget)
        tier = client.tier_store

        touch(client, a)
        assert tier.rebalance() == (1, 0)
        assert tier.hot_ids == {a}

        # Alternate a/b for many rounds: scores stay comparable, so the
        # hysteresis band (2x) must block every demotion.
        for _ in range(10):
            touch(client, b)
            tier.rebalance()
            touch(client, a)
            tier.rebalance()
        assert tier.hot_ids == {a}
        assert tier.demotions == 0

    def test_genuinely_hot_candidate_displaces(self, tiered_world):
        client = make_tiered_client(tiered_world, None)
        a, b = 0, 1
        budget = max(cluster_size(client, a), cluster_size(client, b))
        client = make_tiered_client(tiered_world, budget)
        tier = client.tier_store

        touch(client, a)
        tier.rebalance()
        assert tier.hot_ids == {a}
        # b becomes decisively hotter than a (beyond the 2x band).
        for _ in range(5):
            touch(client, b)
        promotions, demotions = tier.rebalance()
        assert (promotions, demotions) == (1, 1)
        assert tier.hot_ids == {b}

    def test_oversized_cluster_never_promotes(self, tiered_world):
        client = make_tiered_client(tiered_world, None)
        size = cluster_size(client, 0)
        client = make_tiered_client(tiered_world, size // 2)
        tier = client.tier_store
        for _ in range(10):
            touch(client, 0)
        assert tier.rebalance() == (0, 0)
        assert tier.hot_ids == set()

    def test_unbounded_budget_promotes_everything_accessed(
            self, tiered_world):
        client = make_tiered_client(tiered_world, None)
        tier = client.tier_store
        for cid in (0, 1, 2):
            touch(client, cid)
        assert tier.rebalance() == (3, 0)
        assert tier.hot_ids == {0, 1, 2}
        # Rebalance is edge-triggered: nothing accessed, nothing moves.
        assert tier.rebalance() == (0, 0)

    def test_pinned_entry_never_demoted_mid_wave(self, tiered_world):
        client = make_tiered_client(tiered_world, None)
        a, b = 0, 1
        budget = max(cluster_size(client, a), cluster_size(client, b))
        client = make_tiered_client(tiered_world, budget)
        tier = client.tier_store

        touch(client, a)
        tier.rebalance()
        # Simulate a resident entry mid-search: pinned in the cache.
        entry = CachedCluster(a, HnswIndex(24, HnswParams(m=4)), [], 0,
                              client.metadata.version, nbytes=64)
        client.node.reserve_dram(entry.nbytes, force=True)
        client.cache.put(entry)
        client.cache.pin(entry)

        for _ in range(8):
            touch(client, b)
        promotions, demotions = tier.rebalance()
        # The only possible victim is pinned: no demotion, and b cannot
        # fit, so no promotion either.
        assert (promotions, demotions) == (0, 0)
        assert tier.hot_ids == {a}
        assert a in client.cache

        # Once the wave releases its pin the same pressure succeeds.
        client.cache.unpin(entry)
        for _ in range(8):
            touch(client, b)
        promotions, demotions = tier.rebalance()
        assert (promotions, demotions) == (1, 1)
        assert tier.hot_ids == {b}
        assert a not in client.cache


class TestTierInventory:
    def test_counts_and_bytes(self, tiered_world):
        client = make_tiered_client(tiered_world, None)
        tier = client.tier_store
        total = len(client.metadata.clusters)
        assert tier.tier_counts() == (0, total, 0)
        assert tier.hot_tier_bytes() == 0

        touch(client, 0)
        tier.rebalance()
        hot, cold, promoting = tier.tier_counts()
        assert (hot, cold) == (1, total - 1)
        # Promoted but not yet fetched: counted as promoting.
        assert promoting == 1
        assert tier.hot_tier_bytes() == cluster_size(client, 0)
