"""Traffic counters: snapshot, delta, merge arithmetic."""

from __future__ import annotations

import pytest

from repro.rdma.stats import RdmaStats


def test_record_read():
    stats = RdmaStats()
    stats.record_read(100, 2.5)
    assert stats.round_trips == 1
    assert stats.bytes_read == 100
    assert stats.network_time_us == pytest.approx(2.5)


def test_record_write():
    stats = RdmaStats()
    stats.record_write(64, 1.0)
    assert stats.write_ops == 1
    assert stats.bytes_written == 64


def test_record_atomic():
    stats = RdmaStats()
    stats.record_atomic(2.3)
    assert stats.atomic_ops == 1
    assert stats.round_trips == 1
    assert stats.bytes_read == 0


def test_record_doorbell_counts_rings_not_wqes():
    stats = RdmaStats()
    stats.record_doorbell_read([10, 20, 30], rings=1, time_us=4.0)
    assert stats.round_trips == 1
    assert stats.read_ops == 3
    assert stats.doorbell_batches == 1
    assert stats.bytes_read == 60


def test_snapshot_is_independent_copy():
    stats = RdmaStats()
    stats.record_read(10, 1.0)
    snap = stats.snapshot()
    stats.record_read(10, 1.0)
    assert snap.read_ops == 1
    assert stats.read_ops == 2


def test_delta_subtracts_all_fields():
    stats = RdmaStats()
    stats.record_read(10, 1.0)
    earlier = stats.snapshot()
    stats.record_write(5, 0.5)
    stats.record_atomic(2.0)
    delta = stats.delta(earlier)
    assert delta.read_ops == 0
    assert delta.write_ops == 1
    assert delta.atomic_ops == 1
    assert delta.round_trips == 2
    assert delta.network_time_us == pytest.approx(2.5)


def test_merge_accumulates():
    left = RdmaStats()
    left.record_read(10, 1.0)
    right = RdmaStats()
    right.record_write(20, 2.0)
    right.record_doorbell_read([1, 2], rings=1, time_us=0.5)
    left.merge(right)
    assert left.round_trips == 3
    assert left.bytes_read == 13
    assert left.bytes_written == 20
    assert left.network_time_us == pytest.approx(3.5)
