"""Million-vector scale benchmark over the zero-copy memory substrate.

PR 6 rebuilt the registered-region substrate around mmap-backed buffers
with zero-copy READ payloads (memoryview slices decoded in place by
``np.frombuffer``) and streamed dataset generation / ground truth, so the
paper's headline scale — SIFT1M, 1M x 128d — fits through the simulator
without duplicating the corpus on every fetch.  This harness stands the
scenario up end-to-end and gates:

* **build wall-clock** — partition + build + serialize + publish of the
  whole corpus must finish inside the scale's budget;
* **steady-state QPS** — wall-clock query throughput of the pipelined
  client over repeated batches;
* **peak RSS** — the process-wide high-water mark must stay inside a
  budget proportional to the corpus (the pre-PR substrate's copy-per-READ
  behaviour blows well past it);
* **bit-identical answers** — the pipelined engine against the serial
  schedule (itself pinned to the retained reference executor by tier-1
  equivalence tests), plus a zero-copy proof: a served cluster's vector
  store must share memory with the registered region.

Any violated gate exits non-zero, so the CI scale-smoke job doubles as a
regression gate.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_scale.py            # 1M
    PYTHONPATH=src python benchmarks/perf/bench_scale.py --ci       # 200k
    PYTHONPATH=src python benchmarks/perf/bench_scale.py --quick    # 50k

Writes ``benchmarks/perf/BENCH_scale.json`` (override with ``--output``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import time

import numpy as np

from repro.cluster import Deployment
from repro.core import DHnswClient, DHnswConfig
from repro.datasets import sift1m_like
from repro.telemetry import peak_rss_bytes

DEFAULT_OUTPUT = pathlib.Path(__file__).parent / "BENCH_scale.json"

#: Per-mode scenario sizes and acceptance budgets.  ``full`` is the
#: paper's SIFT1M scale; ``ci`` is the scale-smoke size the workflow
#: runs; ``quick`` exists for local iteration.  Budgets are calibrated
#: for a small CI runner (1-2 CPUs) with ~3x headroom over measured.
SCALES = {
    "full": dict(num_vectors=1_000_000, num_queries=512, gen_clusters=2_000,
                 batch_size=256, reps=3,
                 build_budget_s=14_400.0, min_qps=20.0,
                 rss_budget_bytes=16 * 2**30),
    "ci": dict(num_vectors=200_000, num_queries=256, gen_clusters=400,
               batch_size=256, reps=3,
               build_budget_s=3_600.0, min_qps=20.0,
               rss_budget_bytes=6 * 2**30),
    "quick": dict(num_vectors=50_000, num_queries=128, gen_clusters=150,
                  batch_size=128, reps=3,
                  build_budget_s=1_200.0, min_qps=20.0,
                  rss_budget_bytes=4 * 2**30),
}


def check(condition: bool, what: str) -> None:
    if not condition:
        raise SystemExit(f"ACCEPTANCE FAILURE: {what}")


def recall_at_k(ids: np.ndarray, ground_truth: np.ndarray) -> float:
    """Mean fraction of exact neighbours recovered per query."""
    hits = sum(len(np.intersect1d(row, truth))
               for row, truth in zip(ids, ground_truth))
    return hits / ground_truth.size


def run_queries(deployment, queries, overrides, reps):
    """Measure steady-state serving for one configuration."""
    config = deployment.config.replace(cache_fraction=0.10, **overrides)
    client = DHnswClient(deployment.layout, deployment.meta, config,
                         cost_model=deployment.cost_model)
    try:
        client.search_batch(queries, k=10, ef_search=32)  # warm-up
        wall = float("inf")
        batch = None
        for _ in range(reps):
            start = time.perf_counter()
            batch = client.search_batch(queries, k=10, ef_search=32)
            wall = min(wall, time.perf_counter() - start)
        ids = np.stack([result.ids for result in batch.results])
        distances = np.stack([result.distances for result in batch.results])
        section = {
            "pipeline_waves": bool(config.pipeline_waves),
            "wall_seconds": round(wall, 4),
            "wall_qps": round(len(queries) / wall, 1),
            "simulated_latency_per_query_us": round(
                batch.latency_per_query_us, 3),
            "sub_evals": batch.sub_evals,
            "cache_misses": batch.cache_misses,
        }
        return section, ids, distances, client
    finally:
        # The zero-copy probe below needs the last client's cache alive;
        # callers close it.
        pass


def zero_copy_probe(deployment, client) -> dict:
    """Prove a served cluster's vectors alias the registered region."""
    region = deployment.layout.region
    cached = None
    for cluster_id in range(deployment.layout.metadata.num_clusters):
        cached = client.cache.peek(cluster_id)
        if cached is not None:
            break
    check(cached is not None, "no cached cluster to probe after serving")
    vectors = cached.index.graph.vectors
    region_array = np.frombuffer(region.buffer, dtype=np.uint8)
    shares = bool(np.shares_memory(vectors, region_array))
    check(shares, "decoded cluster vectors do not alias the registered "
                  "region — a copy crept back into the fetch path")
    check(not vectors.flags.writeable,
          "decoded vector store is writable — region memory is exposed")
    return {"decoded_shares_region_memory": shares,
            "decoded_store_read_only": not vectors.flags.writeable}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--ci", action="store_true",
                       help="200k-vector scale-smoke run")
    group.add_argument("--quick", action="store_true",
                       help="50k-vector local iteration run")
    parser.add_argument("--fvecs-dir", type=pathlib.Path, default=None,
                        help="directory with real SIFT1M .fvecs/.ivecs "
                             "files (synthetic twin when omitted)")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    mode = "ci" if args.ci else "quick" if args.quick else "full"
    scale = SCALES[mode]
    cpu_count = os.cpu_count() or 1

    gen_start = time.perf_counter()
    dataset = sift1m_like(num_vectors=scale["num_vectors"],
                          num_queries=scale["num_queries"],
                          num_clusters=scale["gen_clusters"],
                          gt_k=10, seed=42, fvecs_dir=args.fvecs_dir)
    gen_seconds = time.perf_counter() - gen_start

    config = DHnswConfig(nprobe=4, ef_meta=32, cache_fraction=0.10,
                         batch_size=scale["batch_size"],
                         overflow_capacity_records=64, seed=42)
    build_start = time.perf_counter()
    deployment = Deployment(dataset.vectors, config,
                            simulate_link_contention=False)
    build_seconds = time.perf_counter() - build_start
    check(build_seconds <= scale["build_budget_s"],
          f"build took {build_seconds:.0f}s, budget is "
          f"{scale['build_budget_s']:.0f}s")

    queries = dataset.queries[:scale["batch_size"]]
    serial_section, serial_ids, serial_dists, serial_client = run_queries(
        deployment, queries, {}, scale["reps"])
    serial_client.close()
    piped_section, piped_ids, piped_dists, piped_client = run_queries(
        deployment, queries, {"pipeline_waves": True}, scale["reps"])

    check(np.array_equal(serial_ids, piped_ids)
          and np.array_equal(serial_dists, piped_dists),
          "pipelined results differ from the serial schedule")
    check(piped_section["wall_qps"] >= scale["min_qps"],
          f"steady-state {piped_section['wall_qps']:.1f} QPS below the "
          f"{scale['min_qps']:.1f} QPS floor")

    zero_copy = zero_copy_probe(deployment, piped_client)
    piped_client.close()

    peak_rss = peak_rss_bytes()
    check(peak_rss <= scale["rss_budget_bytes"],
          f"peak RSS {peak_rss / 2**30:.2f} GiB over the "
          f"{scale['rss_budget_bytes'] / 2**30:.2f} GiB budget")

    recall = recall_at_k(piped_ids, dataset.ground_truth[:len(queries)])
    report = {
        "benchmark": "million-vector scale-up on the zero-copy substrate",
        "mode": mode,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": cpu_count,
        },
        "dataset": {
            "kind": dataset.name,
            "num_vectors": int(dataset.num_vectors),
            "dim": int(dataset.dim),
            "num_queries": len(queries),
            "seed": 42,
        },
        "generate_seconds": round(gen_seconds, 1),
        "build_seconds": round(build_seconds, 1),
        "build_budget_seconds": scale["build_budget_s"],
        "registered_bytes": deployment.memory_node.registered_bytes,
        "peak_rss_bytes": peak_rss,
        "rss_budget_bytes": scale["rss_budget_bytes"],
        "reps_best_of": scale["reps"],
        "sections": {"serial": serial_section, "pipelined": piped_section},
        "recall_at_10": round(recall, 4),
        "zero_copy": zero_copy,
        "acceptance": {
            "build_within_budget": True,
            "qps_floor": scale["min_qps"],
            "qps_measured": piped_section["wall_qps"],
            "rss_within_budget": True,
            "bit_identical": True,
            "zero_copy_proven": True,
        },
    }

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({k: report[k] for k in
                      ("build_seconds", "registered_bytes",
                       "peak_rss_bytes", "sections", "recall_at_10",
                       "zero_copy", "acceptance")}, indent=2))
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
