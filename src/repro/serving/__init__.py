"""Serving layer: the staged execution pipeline behind ``DHnswClient``.

A batched query flows Planner → Fetcher → Decoder → Executor → Merger,
composed by :class:`ServingEngine`; a :class:`TraceContext` rides along
attributing wall/simulated time and bytes to each stage.  The layer talks
to remote memory exclusively through :mod:`repro.transport` (enforced by
``tests/test_layering.py``) and holds no index state — the client remains
the single owner of metadata, cache, and transport.

``repro.serving.reference`` keeps the pre-decomposition monolithic loop as
an equivalence oracle.
"""

from repro.serving.decoder import Decoder
from repro.serving.engine import ServingEngine
from repro.serving.executor import PlanExecution, WaveExecutor, overlap_saved
from repro.serving.fetcher import Fetcher
from repro.serving.merger import Merger
from repro.serving.planner import Planner
from repro.serving.trace import StageReport, TraceContext

__all__ = [
    "Decoder",
    "Fetcher",
    "Merger",
    "PlanExecution",
    "Planner",
    "ServingEngine",
    "StageReport",
    "TraceContext",
    "WaveExecutor",
    "overlap_saved",
]
