"""Synthetic stand-ins for SIFT1M and GIST1M.

The paper evaluates on SIFT1M (128-d SIFT descriptors, byte-valued) and
GIST1M (960-d GIST descriptors in [0, 1]).  Neither corpus ships with this
repo, so we generate clustered Gaussian data with matching dimensionality
and value range.  Real descriptor corpora are strongly clustered — which is
exactly the property d-HNSW's partitioning exploits — so the generators
draw cluster centres uniformly and scatter points around them.

Drop-in replacement with the real datasets is supported through
:mod:`repro.datasets.loaders` (``.fvecs``/``.ivecs``).
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np

from repro.datasets.ground_truth import exact_knn
from repro.datasets.loaders import read_fvecs, read_ivecs
from repro.hnsw.distance import Metric

__all__ = ["Dataset", "make_clustered", "sift_like", "gist_like",
           "sift1m_like"]


@dataclasses.dataclass(frozen=True)
class Dataset:
    """A benchmark corpus: base vectors, query vectors, exact top-k ids."""

    name: str
    vectors: np.ndarray
    queries: np.ndarray
    ground_truth: np.ndarray
    metric: Metric = Metric.L2

    @property
    def num_vectors(self) -> int:
        """Corpus size."""
        return self.vectors.shape[0]

    @property
    def num_queries(self) -> int:
        """Query-set size."""
        return self.queries.shape[0]

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self.vectors.shape[1]

    @property
    def gt_k(self) -> int:
        """Number of exact neighbours stored per query."""
        return self.ground_truth.shape[1]

    def __post_init__(self) -> None:
        if self.vectors.ndim != 2 or self.queries.ndim != 2:
            raise ValueError("vectors and queries must be 2-D arrays")
        if self.vectors.shape[1] != self.queries.shape[1]:
            raise ValueError(
                f"corpus dim {self.vectors.shape[1]} != query dim "
                f"{self.queries.shape[1]}")
        if self.ground_truth.shape[0] != self.queries.shape[0]:
            raise ValueError(
                f"{self.queries.shape[0]} queries but ground truth for "
                f"{self.ground_truth.shape[0]}")


def make_clustered(num_vectors: int, dim: int, num_clusters: int,
                   cluster_std: float, rng: np.random.Generator,
                   low: float = 0.0, high: float = 1.0,
                   chunk_size: int = 65_536) -> np.ndarray:
    """Clustered Gaussian vectors clipped to ``[low, high]``.

    Cluster populations are drawn from a Dirichlet prior so partition sizes
    are realistically skewed rather than uniform.

    Generation streams in ``chunk_size``-row chunks straight into the
    float32 output array, so the float64 scratch never exceeds one chunk
    — at 1M x 128d the peak footprint is the 512 MB result plus ~64 MB of
    scratch instead of ~1.5 GB.  Chunking is bit-identical to a single
    full-size draw: the generator's normal stream is consumed value by
    value in C order regardless of the requested shape.
    """
    if num_vectors < 1 or num_clusters < 1:
        raise ValueError("num_vectors and num_clusters must be >= 1")
    if high <= low:
        raise ValueError(f"need high > low, got [{low}, {high}]")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    centers = rng.uniform(low, high, size=(num_clusters, dim))
    weights = rng.dirichlet(np.full(num_clusters, 2.0))
    assignments = rng.choice(num_clusters, size=num_vectors, p=weights)
    spread = cluster_std * (high - low)
    out = np.empty((num_vectors, dim), dtype=np.float32)
    for start in range(0, num_vectors, chunk_size):
        stop = min(start + chunk_size, num_vectors)
        block = centers[assignments[start:stop]] + rng.normal(
            0.0, spread, size=(stop - start, dim))
        np.clip(block, low, high, out=block)
        out[start:stop] = block
    return out


def _build(name: str, dim: int, num_vectors: int, num_queries: int,
           num_clusters: int, cluster_std: float, low: float, high: float,
           gt_k: int, seed: int) -> Dataset:
    rng = np.random.default_rng(seed)
    corpus = make_clustered(num_vectors + num_queries, dim, num_clusters,
                            cluster_std, rng, low=low, high=high)
    # Queries are held-out points from the same distribution, as in the
    # SIFT/GIST benchmark methodology.
    vectors = corpus[:num_vectors]
    queries = corpus[num_vectors:]
    ground_truth = exact_knn(vectors, queries, gt_k)
    return Dataset(name=name, vectors=vectors, queries=queries,
                   ground_truth=ground_truth)


def sift_like(num_vectors: int = 20_000, num_queries: int = 200,
              num_clusters: int = 120, cluster_std: float = 0.08,
              gt_k: int = 10, seed: int = 0) -> Dataset:
    """A SIFT1M-shaped corpus: 128-d, byte-range values, clustered.

    Default 20k vectors keeps end-to-end benchmarks laptop-sized; scale
    ``num_vectors`` up freely.
    """
    return _build("sift-like", dim=128, num_vectors=num_vectors,
                  num_queries=num_queries, num_clusters=num_clusters,
                  cluster_std=cluster_std, low=0.0, high=255.0,
                  gt_k=gt_k, seed=seed)


def sift1m_like(num_vectors: int = 1_000_000, num_queries: int = 1_000,
                num_clusters: int = 2_000, cluster_std: float = 0.08,
                gt_k: int = 10, seed: int = 0,
                fvecs_dir: "str | os.PathLike[str] | None" = None
                ) -> Dataset:
    """The million-vector scale scenario: SIFT1M or its synthetic twin.

    With ``fvecs_dir`` pointing at an extracted TEXMEX SIFT1M directory
    (``sift_base.fvecs`` / ``sift_query.fvecs`` /
    ``sift_groundtruth.ivecs``), the real corpus is loaded through the
    memmap path — base vectors stay on disk and page in on demand.  The
    shipped ground truth is used when present (truncated to ``gt_k``);
    otherwise it is recomputed by the streaming brute-force oracle.

    Without ``fvecs_dir`` the corpus is synthetic: same dimensionality,
    value range and clustered structure as SIFT1M, generated and
    ground-truthed in fixed-size chunks so peak RSS stays bounded.
    ``num_vectors`` scales the scenario down for CI-sized runs.
    """
    if fvecs_dir is not None:
        base = os.path.join(fvecs_dir, "sift_base.fvecs")
        query = os.path.join(fvecs_dir, "sift_query.fvecs")
        gt_path = os.path.join(fvecs_dir, "sift_groundtruth.ivecs")
        vectors = read_fvecs(base, max_vectors=num_vectors, mmap_mode="r")
        queries = read_fvecs(query, max_vectors=num_queries)
        full_corpus = vectors.shape[0] >= 1_000_000
        if os.path.exists(gt_path) and full_corpus:
            truth = read_ivecs(gt_path, max_vectors=num_queries)
            ground_truth = truth[:, :gt_k].astype(np.int64)
        else:
            # A truncated corpus invalidates the shipped neighbours;
            # recompute against what was actually loaded.
            ground_truth = exact_knn(vectors, queries, gt_k)
        return Dataset(name="sift1m", vectors=vectors, queries=queries,
                       ground_truth=ground_truth)
    return _build("sift1m-like", dim=128, num_vectors=num_vectors,
                  num_queries=num_queries, num_clusters=num_clusters,
                  cluster_std=cluster_std, low=0.0, high=255.0,
                  gt_k=gt_k, seed=seed)


def gist_like(num_vectors: int = 10_000, num_queries: int = 100,
              num_clusters: int = 80, cluster_std: float = 0.06,
              gt_k: int = 10, seed: int = 0) -> Dataset:
    """A GIST1M-shaped corpus: 960-d, unit-range values, clustered."""
    return _build("gist-like", dim=960, num_vectors=num_vectors,
                  num_queries=num_queries, num_clusters=num_clusters,
                  cluster_std=cluster_std, low=0.0, high=1.0,
                  gt_k=gt_k, seed=seed)
