"""Deployment topology: instance independence and contention wiring."""

from __future__ import annotations

import pytest

from repro.cluster import Deployment
from repro.core import Scheme
from repro.errors import ConfigError


class TestTopology:
    def test_default_single_instance(self, built_deployment):
        assert built_deployment.num_compute_instances == 1

    def test_multi_instance_clients_isolated(self, small_dataset,
                                             small_config):
        deployment = Deployment(small_dataset.vectors, small_config,
                                num_compute_instances=3)
        first, second = deployment.client(0), deployment.client(1)
        assert first is not second
        assert first.cache is not second.cache
        assert first.node.clock is not second.node.clock
        first.search_batch(small_dataset.queries[:5], 3, ef_search=8)
        assert second.node.stats.round_trips <= 1  # only its startup read

    def test_zero_instances_rejected(self, small_dataset, small_config):
        with pytest.raises(ConfigError):
            Deployment(small_dataset.vectors, small_config,
                       num_compute_instances=0)

    def test_shared_layout(self, small_dataset, small_config):
        deployment = Deployment(small_dataset.vectors, small_config,
                                num_compute_instances=2)
        assert deployment.client(0).layout is deployment.client(1).layout


class TestContention:
    def test_fair_share_bandwidth(self, small_dataset, small_config):
        deployment = Deployment(small_dataset.vectors, small_config,
                                num_compute_instances=4)
        assert deployment.effective_cost_model.bandwidth_gbps == (
            pytest.approx(deployment.cost_model.bandwidth_gbps / 4))

    def test_contention_can_be_disabled(self, small_dataset, small_config):
        deployment = Deployment(small_dataset.vectors, small_config,
                                num_compute_instances=4,
                                simulate_link_contention=False)
        assert deployment.effective_cost_model == deployment.cost_model

    def test_single_instance_no_dilation(self, built_deployment):
        assert (built_deployment.effective_cost_model
                == built_deployment.cost_model)


class TestMakeClient:
    def test_make_client_not_registered(self, built_deployment):
        before = built_deployment.num_compute_instances
        client = built_deployment.make_client(Scheme.NAIVE)
        assert built_deployment.num_compute_instances == before
        assert client.scheme is Scheme.NAIVE

    def test_make_client_answers_queries(self, built_deployment,
                                         small_dataset):
        client = built_deployment.make_client(Scheme.NO_DOORBELL)
        result = client.search(small_dataset.queries[0], 3, ef_search=16)
        assert len(result.ids) == 3
