"""Property test: any arrival interleaving replays and answers honestly.

The determinism contract, stated adversarially: for *any* arrival
sequence (gaps, tenant assignment, seed — hypothesis picks them), running
the same requests through two fresh front doors yields the identical
schedule, and the answers are bit-identical to one direct
``search_batch`` over the same queries.  This is satellite #3 of the
front-door issue and the property the benchmark gates at scale.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FrontDoorConfig
from repro.frontdoor import FrontDoor, make_requests


@st.composite
def arrival_plans(draw):
    """(gaps_us, tenant count, seed, max_wait_us, max_batch)."""
    count = draw(st.integers(min_value=1, max_value=24))
    gaps = draw(st.lists(
        st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
        min_size=count, max_size=count))
    num_tenants = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    max_wait_us = draw(st.sampled_from([0.0, 500.0, 2000.0]))
    max_batch = draw(st.sampled_from([1, 4, 16]))
    return gaps, num_tenants, seed, max_wait_us, max_batch


@settings(max_examples=12, deadline=None)
@given(plan=arrival_plans())
def test_any_interleaving_replays_and_matches_direct_search(
        built_deployment, small_dataset, plan):
    gaps, num_tenants, seed, max_wait_us, max_batch = plan
    arrivals = np.cumsum(np.asarray(gaps, dtype=np.float64))
    rng = np.random.default_rng(seed)
    requests = make_requests(
        arrivals, small_dataset.queries, k=5, slo_us=10_000_000.0,
        rng=rng, tenants=tuple(f"t{i}" for i in range(num_tenants)),
        ef_search=24)
    config = FrontDoorConfig(max_wait_us=max_wait_us, max_batch=max_batch)

    scheme = built_deployment.client().scheme

    def run():
        client = built_deployment.make_client(scheme, name="prop")
        return FrontDoor(client, config).run(requests)

    first = run()
    second = run()

    # 1. Same arrivals + same seed => the identical schedule.
    assert first.schedule_signature() == second.schedule_signature()
    assert first.latency_histogram() == second.latency_histogram()

    # 2. Coalescing never changes a single answer bit.
    assert first.served == len(requests)
    oracle = built_deployment.make_client(scheme, name="oracle")
    queries = np.stack([r.query for r in requests])
    direct = oracle.search_batch(queries, 5, ef_search=24)
    for outcome, result in zip(first.outcomes, direct.results):
        assert np.array_equal(outcome.ids, result.ids)
        assert np.array_equal(outcome.distances, result.distances)
