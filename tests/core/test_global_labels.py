"""Global-label plumbing through the build pipeline (sharding support)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Deployment
from repro.core import DHnswBuilder, DHnswConfig


@pytest.fixture(scope="module")
def labelled(small_dataset, small_config):
    labels = np.arange(small_dataset.num_vectors, dtype=np.int64) * 7 + 3
    deployment = Deployment(small_dataset.vectors, small_config,
                            labels=labels)
    return deployment, labels


def test_search_returns_custom_labels(labelled, small_dataset):
    deployment, labels = labelled
    result = deployment.client(0).search(small_dataset.vectors[42], 1,
                                         ef_search=32)
    assert result.ids[0] == labels[42]


def test_all_results_from_label_space(labelled, small_dataset):
    deployment, labels = labelled
    label_set = set(labels.tolist())
    batch = deployment.client(0).search_batch(small_dataset.queries, 10,
                                              ef_search=32)
    for result in batch.results:
        assert set(result.ids.tolist()).issubset(label_set)


def test_label_count_mismatch_rejected(small_dataset, small_config):
    builder = DHnswBuilder(small_config)
    with pytest.raises(ValueError, match="labels"):
        builder.build(small_dataset.vectors,
                      labels=np.arange(3, dtype=np.int64))


def test_delete_by_custom_label(labelled, small_dataset):
    deployment, labels = labelled
    client = deployment.client(0)
    target = small_dataset.vectors[7]
    gid = int(labels[7])
    assert client.search(target, 1, ef_search=32).ids[0] == gid
    client.delete(target, gid)
    assert client.search(target, 1, ef_search=32).ids[0] != gid


def test_default_labels_are_row_ids(small_dataset, small_config):
    config = DHnswConfig(num_representatives=8, seed=3)
    deployment = Deployment(small_dataset.vectors, config)
    result = deployment.client(0).search(small_dataset.vectors[0], 1,
                                         ef_search=32)
    assert result.ids[0] == 0
