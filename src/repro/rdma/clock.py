"""Simulated time.

All latency numbers this library reports are simulated microseconds advanced
on a :class:`SimClock` by the RDMA cost model and the compute cost model —
never wall-clock.  This keeps experiments deterministic and lets a laptop
reproduce the *shape* of results measured on a 100 Gb testbed.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A monotonically advancing microsecond counter."""

    def __init__(self, start_us: float = 0.0) -> None:
        if start_us < 0:
            raise ValueError(f"start_us must be >= 0, got {start_us}")
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_us

    def advance(self, delta_us: float) -> float:
        """Advance time by ``delta_us`` (must be >= 0); returns new time."""
        if delta_us < 0:
            raise ValueError(f"cannot advance by negative time {delta_us}")
        self._now_us += delta_us
        return self._now_us

    def __repr__(self) -> str:
        return f"SimClock(now_us={self._now_us:.3f})"
