"""Exact kNN oracle correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.ground_truth import exact_knn
from repro.hnsw.distance import Metric, pairwise_l2


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    corpus = rng.standard_normal((400, 12)).astype(np.float32)
    queries = rng.standard_normal((25, 12)).astype(np.float32)
    return corpus, queries


def test_matches_full_argsort(data):
    corpus, queries = data
    result = exact_knn(corpus, queries, 5)
    expected = np.argsort(pairwise_l2(queries, corpus), axis=1)[:, :5]
    np.testing.assert_array_equal(result, expected)


def test_chunking_does_not_change_result(data):
    corpus, queries = data
    whole = exact_knn(corpus, queries, 8, chunk_size=1000)
    chunked = exact_knn(corpus, queries, 8, chunk_size=3)
    np.testing.assert_array_equal(whole, chunked)


def test_corpus_blocking_does_not_change_result(data):
    """Streaming the corpus in blocks must merge to the same winners."""
    corpus, queries = data
    whole = exact_knn(corpus, queries, 8, corpus_block=10_000)
    for block in (7, 64, 399, 400, 401):
        np.testing.assert_array_equal(
            whole, exact_knn(corpus, queries, 8, corpus_block=block))


def test_corpus_block_smaller_than_k(data):
    """Blocks narrower than k still accumulate a full top-k."""
    corpus, queries = data
    whole = exact_knn(corpus, queries, 8, corpus_block=10_000)
    np.testing.assert_array_equal(
        whole, exact_knn(corpus, queries, 8, corpus_block=3))


def test_distance_ties_break_by_id():
    """Duplicate corpus rows: the lower id must win deterministically."""
    row = np.ones((1, 4), dtype=np.float32)
    corpus = np.concatenate([row, row, row, np.zeros((1, 4))]).astype(
        np.float32)
    result = exact_knn(corpus, row, 3, corpus_block=2)
    np.testing.assert_array_equal(result, [[0, 1, 2]])


def test_k_clipped_to_corpus_size():
    corpus = np.eye(3, dtype=np.float32)
    queries = corpus[:1]
    result = exact_knn(corpus, queries, 10)
    assert result.shape == (1, 3)


def test_self_query_returns_self_first(data):
    corpus, _ = data
    result = exact_knn(corpus, corpus[:10], 1)
    np.testing.assert_array_equal(result[:, 0], np.arange(10))


def test_columns_sorted_by_distance(data):
    corpus, queries = data
    result = exact_knn(corpus, queries, 6)
    dists = pairwise_l2(queries, corpus)
    for row in range(queries.shape[0]):
        row_dists = dists[row, result[row]]
        assert np.all(np.diff(row_dists) >= -1e-5)


def test_inner_product_metric():
    corpus = np.array([[1, 0], [0, 1], [2, 2]], dtype=np.float32)
    queries = np.array([[1, 1]], dtype=np.float32)
    result = exact_knn(corpus, queries, 1, metric=Metric.INNER_PRODUCT)
    assert result[0, 0] == 2  # highest dot product wins


def test_validation():
    corpus = np.zeros((4, 2), dtype=np.float32)
    with pytest.raises(ValueError):
        exact_knn(corpus, corpus, 0)
    with pytest.raises(ValueError):
        exact_knn(corpus, corpus, 1, chunk_size=0)
    with pytest.raises(ValueError):
        exact_knn(corpus, corpus, 1, corpus_block=0)
