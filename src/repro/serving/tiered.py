"""Tiered cluster store: hot full-precision serves over a PQ cold tier.

The d-HNSW hot path caches entire sub-HNSW clusters full-precision in
compute DRAM, so footprint scales with the *working* set.  This stage
breaks that: every cluster also has a compact cold extent on the memory
node (PQ codes, optionally with a Vamana adjacency — see
:mod:`repro.layout.cold`), and the store decides per batch which
required clusters are served **hot** (fetched/cached full-precision and
beam-searched, exactly as before) and which are served **cold**:

1. one doorbell-batched READ pulls the cold extents plus the involved
   groups' 8-byte overflow tails (a second narrow READ pulls any
   overflow records);
2. ADC candidate generation over the short codes — a full asymmetric
   scan in ``pq`` mode, an ADC-guided greedy walk from the medoid in
   ``vamana`` mode;
3. the best ``rerank_depth`` candidates' *full* vectors are fetched in
   a second doorbell READ straight out of the hot blob's vector section
   (``vectors_offset`` + 4·dim·node) and reranked exactly.

Between batches :meth:`TieredClusterStore.rebalance` promotes/demotes
clusters against ``DHnswConfig.hot_tier_budget_bytes`` using the
cache's EWMA access frequencies, with hysteresis
(``tier_hysteresis``) so alternating access patterns do not ping-pong a
cluster between tiers.  Demotion never touches an entry pinned by
in-flight compute.

Everything here is charged to the simulated clock through the same
transport and compute-cost paths the hot tier uses, and shows up on the
request trace under the ``cold-fetch`` / ``cold-compute`` /
``rerank-fetch`` / ``tier-rebalance`` stages.
"""

from __future__ import annotations

import dataclasses
import heapq
import struct

import numpy as np

from repro.core.cluster_search import replay_overflow
from repro.errors import LayoutError, SerializationError
from repro.hnsw.distance import DistanceKernel, Metric
from repro.layout.cold import (NO_NEIGHBOR, ColdCluster,
                               deserialize_cold_cluster)
from repro.layout.group_layout import OVERFLOW_TAIL_BYTES, cluster_read_extent
from repro.layout.serializer import (overflow_record_size,
                                     unpack_overflow_records)
from repro.pq.codebook import PqCodebook
from repro.serving.trace import TraceContext, span
from repro.transport import ReadDescriptor

__all__ = ["ColdExecution", "TieredClusterStore"]

_U64 = struct.Struct("<Q")

#: Two-phase ADC scan: the full scan prices every node at
#: ``num_subspaces`` lookup-adds, which dominates cold compute once the
#: codebook is fine enough to rank well.  Instead the scan scores every
#: node on a strided half of the subspaces (capturing components across
#: the whole vector), and only a small multiple of the final shortlist
#: is re-scored with the remaining subspaces.
_COARSE_FRACTION = 2       # scan with num_subspaces // 2 subspaces
_MIN_COARSE_SUBSPACES = 8
_REFINE_FACTOR = 2         # refine 2 x rerank_depth candidates


@dataclasses.dataclass
class ColdExecution:
    """Accounting for the cold side of one batch."""

    clusters: int = 0           # distinct clusters served cold
    evals: int = 0              # candidate scorings (ADC + exact rerank)
    compute_us: float = 0.0     # simulated compute charged by the cold path


class TieredClusterStore:
    """Per-batch hot/cold routing plus background tier rebalancing."""

    def __init__(self, host, codebook: PqCodebook) -> None:
        self.host = host
        self.codebook = codebook
        if host.metadata.cold is None:
            raise LayoutError(
                "tiered store requires a layout with a cold directory")
        self.kernel = DistanceKernel(host.metadata.dim, Metric.L2)
        #: Clusters currently assigned to the hot tier.  A hot cluster is
        #: fetched full-precision (and cached) on its next serve — until
        #: that fetch lands it is "promoting".
        self.hot_ids: set[int] = set()
        self.promotions = 0
        self.demotions = 0
        self.hot_serves = 0
        self.cold_serves = 0
        self._accessed_cold: set[int] = set()
        # Per-batch scratch: cid -> region-relative offset of its full
        # vector section, captured while decoding cold extents.
        self._vectors_offsets: dict[int, int] = {}
        # Two-phase scan split: a strided quarter of the subspaces for
        # the coarse pass (striding samples components across the whole
        # vector), the rest for refinement.  Disabled for codebooks too
        # small to split.
        num_subspaces = codebook.num_subspaces
        num_coarse = max(_MIN_COARSE_SUBSPACES,
                         num_subspaces // _COARSE_FRACTION)
        if num_coarse < num_subspaces:
            self._coarse_columns = np.linspace(
                0, num_subspaces, num_coarse,
                endpoint=False).astype(np.int64)
            rest = np.ones(num_subspaces, dtype=bool)
            rest[self._coarse_columns] = False
            self._rest_columns = np.flatnonzero(rest)
        else:
            self._coarse_columns = None
            self._rest_columns = None

    # ------------------------------------------------------------------
    # Tier inventory (telemetry)
    # ------------------------------------------------------------------
    def tier_counts(self) -> tuple[int, int, int]:
        """(hot, cold, promoting) cluster counts right now."""
        cold_dir = self.host.metadata.cold
        tiered = sum(1 for extent in cold_dir.extents if extent.length > 0)
        hot = len(self.hot_ids)
        promoting = sum(1 for cid in self.hot_ids
                        if self.host.cache.peek(cid) is None)
        return hot, max(0, tiered - hot), promoting

    def hot_tier_bytes(self) -> int:
        """Full-precision bytes the current hot set pins in DRAM."""
        metadata = self.host.metadata
        return sum(cluster_read_extent(metadata, cid)[1]
                   for cid in self.hot_ids)

    # ------------------------------------------------------------------
    # Per-batch split
    # ------------------------------------------------------------------
    def split(self, required: list[list[int]]
              ) -> tuple[list[list[int]], dict[int, list[int]]]:
        """Partition routed clusters into hot lists and a cold demand map.

        Returns ``(hot_required, cold_required)`` where ``hot_required``
        mirrors ``required`` with cold clusters removed (it feeds the
        unchanged wave planner) and ``cold_required`` maps each cold
        cluster id to the sorted query indices that need it.  Every
        unique required cluster gets one EWMA access bump.
        """
        cache = self.host.cache
        cold_dir = self.host.metadata.cold
        now_us = self.host.node.clock.now_us
        demand: dict[int, int] = {}
        for row in required:
            for cid in row:
                demand[cid] = demand.get(cid, 0) + 1
        unique = sorted(demand)
        serve_cold: set[int] = set()
        for cid in unique:
            # Weight by how many of the batch's queries probe the
            # cluster: with large batches nearly every cluster appears
            # in every batch, and presence alone cannot tell a Zipf head
            # cluster from the tail.
            cache.record_access(cid, now_us, weight=demand[cid])
            if (cold_dir.extents[cid].length > 0
                    and cid not in self.hot_ids
                    and cache.peek(cid) is None):
                serve_cold.add(cid)
        self.hot_serves += len(unique) - len(serve_cold)
        self.cold_serves += len(serve_cold)
        self._accessed_cold.update(serve_cold)
        hot_required = [[cid for cid in row if cid not in serve_cold]
                        for row in required]
        cold_required: dict[int, list[int]] = {cid: [] for cid
                                               in sorted(serve_cold)}
        for query_index, row in enumerate(required):
            for cid in row:
                if cid in serve_cold:
                    bucket = cold_required[cid]
                    if not bucket or bucket[-1] != query_index:
                        bucket.append(query_index)
        return hot_required, cold_required

    # ------------------------------------------------------------------
    # Cold serving
    # ------------------------------------------------------------------
    def execute_cold(self, cold_required: dict[int, list[int]],
                     queries: np.ndarray, merger, k: int,
                     trace: TraceContext | None = None) -> ColdExecution:
        """Serve every cold cluster's queries; feeds ``merger`` directly."""
        execution = ColdExecution()
        if not cold_required:
            return execution
        host = self.host
        metadata = host.metadata
        cold_dir = metadata.cold
        cids = sorted(cold_required)
        execution.clusters = len(cids)
        group_ids = sorted({metadata.clusters[cid].group_id
                            for cid in cids})

        # Round 1: every cold extent plus each involved group's overflow
        # tail counter, one doorbell.
        descriptors = [ReadDescriptor(
            host.layout.rkey,
            host.layout.addr(cold_dir.extents[cid].offset),
            cold_dir.extents[cid].length) for cid in cids]
        descriptors += [ReadDescriptor(
            host.layout.rkey,
            host.layout.addr(metadata.groups[gid].overflow_offset),
            OVERFLOW_TAIL_BYTES) for gid in group_ids]
        with span(trace, "cold-fetch"):
            payloads = host.transport.read_batch(
                descriptors, doorbell=host.policy.doorbell_batching)
        cold_payloads = payloads[:len(cids)]
        tails: dict[int, int] = {}
        for gid, payload in zip(group_ids, payloads[len(cids):]):
            (tail,) = _U64.unpack(payload)
            tails[gid] = min(int(tail),
                             metadata.groups[gid].capacity_records)

        # Narrow second read: overflow records of groups that have any.
        record_size = overflow_record_size(metadata.dim)
        live_groups = [gid for gid in group_ids if tails[gid] > 0]
        records_by_group: dict[int, list] = {}
        if live_groups:
            record_reads = [ReadDescriptor(
                host.layout.rkey,
                host.layout.addr(metadata.groups[gid].overflow_offset
                                 + OVERFLOW_TAIL_BYTES),
                tails[gid] * record_size) for gid in live_groups]
            with span(trace, "cold-fetch"):
                blobs = host.transport.read_batch(
                    record_reads, doorbell=host.policy.doorbell_batching)
            for gid, blob in zip(live_groups, blobs):
                records_by_group[gid] = unpack_overflow_records(
                    blob, metadata.dim, tails[gid])

        # ADC candidate generation.  The codebook is deployment-global,
        # so a query's lookup tables are shared by every cold cluster it
        # probes — build them once per query, not per (cluster, query).
        with span(trace, "cold-compute"):
            execution.compute_us += host.node.charge_time(
                host.cost_model.deserialize_us(
                    sum(len(p) for p in cold_payloads)))
        rerank_depth = max(host.config.rerank_depth, k)
        tables_cache: dict[int, np.ndarray] = {}
        # query -> per-cluster (cid, nodes, approx, labels) candidate pools.
        pools: dict[int, list] = {}
        # cid -> code matrix, kept while coarse scan sums await refinement.
        codes_by_cid: dict[int, np.ndarray] = {}
        for cid, payload in zip(cids, cold_payloads):
            cold = deserialize_cold_cluster(payload)
            if cold.cluster_id != cid:
                raise SerializationError(
                    f"cold extent for cluster {cid} decodes as cluster "
                    f"{cold.cluster_id}")
            gid = metadata.clusters[cid].group_id
            records = [record for record
                       in records_by_group.get(gid, [])
                       if record.cluster_id == cid]
            state = replay_overflow(records)
            live = [record for record in state.values()
                    if record is not None]
            live_matrix = (np.stack([record.vector for record in live])
                           if live else None)
            live_gids = (np.array([record.global_id for record in live],
                                  dtype=np.int64) if live else None)
            dead_gids = (np.fromiter(state.keys(), dtype=np.int64,
                                     count=len(state)) if state else None)
            keep_nodes = np.arange(cold.num_nodes)
            if dead_gids is not None and cold.num_nodes:
                keep_nodes = keep_nodes[~np.isin(cold.labels, dead_gids)]
            is_scan = (cold.degree == 0 or cold.adjacency is None
                       or cold.medoid < 0)
            two_phase = is_scan and self._coarse_columns is not None
            if two_phase:
                codes_by_cid[cid] = cold.codes
            scan_cost = (len(self._coarse_columns) if two_phase
                         else self.codebook.num_subspaces)
            for query_index in cold_required[cid]:
                query = queries[query_index]
                with span(trace, "cold-compute"):
                    tables = tables_cache.get(query_index)
                    if tables is None:
                        # Table build ~ num_centroids distance evals at
                        # full dim, paid once per query per batch.
                        tables = self.codebook.adc_tables(query)
                        tables_cache[query_index] = tables
                        execution.compute_us += host.node.charge_compute(
                            self.codebook.num_centroids, metadata.dim)
                    # A scan costs one lookup-add per scored candidate
                    # per scanned subspace — the coarse quarter in
                    # two-phase mode, all of them for a walk.
                    nodes, approx = self._adc_candidates(
                        cold, tables, keep_nodes,
                        max(rerank_depth, k),
                        columns=(self._coarse_columns if two_phase
                                 else None))
                    execution.compute_us += host.node.charge_compute(
                        len(nodes), scan_cost)
                    execution.evals += len(nodes)
                pools.setdefault(query_index, []).append(
                    (cid, nodes, approx, cold.labels))
                if live_matrix is not None:
                    with span(trace, "cold-compute"):
                        overflow_dists = self.kernel.many(query,
                                                          live_matrix)
                        execution.compute_us += host.node.charge_compute(
                            len(live), metadata.dim)
                        execution.evals += len(live)
                    merger.add(query_index, live_gids,
                               np.asarray(overflow_dists,
                                          dtype=np.float64))
            self._vectors_offsets[cid] = cold.vectors_offset

        # Global per-query shortlist: merge candidate pools across the
        # query's cold clusters, refine the coarse scan sums with the
        # held-out subspaces for a small multiple of the shortlist, and
        # keep exactly ``rerank_depth`` of them (lexsort ties on global
        # id, matching exact_knn's order).
        candidate_slots: dict[tuple[int, int], int] = {}
        shortlists: list[tuple[int, np.ndarray, np.ndarray,
                               np.ndarray]] = []
        for query_index in sorted(pools):
            chunks = pools[query_index]
            pool_cids = np.concatenate(
                [np.full(len(nodes), cid, dtype=np.int64)
                 for cid, nodes, _, _ in chunks])
            pool_nodes = np.concatenate(
                [nodes for _, nodes, _, _ in chunks])
            pool_approx = np.concatenate(
                [approx for _, _, approx, _ in chunks])
            pool_labels = np.concatenate(
                [labels[nodes] for _, nodes, _, labels in chunks])
            order = np.lexsort(
                (pool_labels, pool_approx))[:_REFINE_FACTOR * rerank_depth]
            if codes_by_cid and len(order) > rerank_depth:
                rest = self._rest_columns
                tables = tables_cache[query_index]
                refined = pool_approx[order].copy()
                refinable = 0
                for cid in np.unique(pool_cids[order]):
                    if cid not in codes_by_cid:
                        continue  # walk pools already carry full sums
                    mask = pool_cids[order] == cid
                    codes = codes_by_cid[cid][pool_nodes[order][mask]]
                    refined[mask] += tables[rest[None, :],
                                            codes[:, rest]].sum(axis=1)
                    refinable += int(mask.sum())
                with span(trace, "cold-compute"):
                    execution.compute_us += host.node.charge_compute(
                        refinable, len(rest))
                    execution.evals += refinable
                keep = np.lexsort(
                    (pool_labels[order], refined))[:rerank_depth]
                order = order[keep]
            else:
                order = order[:rerank_depth]
            chosen_cids = pool_cids[order]
            chosen_nodes = pool_nodes[order]
            for cid, node in zip(chosen_cids.tolist(),
                                 chosen_nodes.tolist()):
                candidate_slots.setdefault((cid, node),
                                           len(candidate_slots))
            shortlists.append((query_index, chosen_cids, chosen_nodes,
                               pool_labels[order]))

        # One narrow doorbell READ for the union of rerank candidates'
        # full vectors, straight out of the hot blobs' vector sections.
        # The candidates are scattered rows of each cluster's contiguous
        # vector section, and every WQE costs PCIe DMA plus a share of
        # its ring's RTT — so neighboring candidates are coalesced into
        # one wider READ whenever the bridged gap serializes faster than
        # another work request would cost.
        vector_bytes = 4 * metadata.dim
        cost = host.cost_model
        if host.policy.doorbell_batching:
            wqe_us = (cost.pcie_us_per_wqe
                      + (cost.base_rtt_us + cost.doorbell_split_penalty_us)
                      / cost.doorbell_limit)
        else:
            wqe_us = cost.base_rtt_us + cost.pcie_us_per_wqe
        gap_limit = int(wqe_us * cost.bytes_per_us)
        nodes_by_cid: dict[int, list[int]] = {}
        for cid, node in candidate_slots:
            nodes_by_cid.setdefault(cid, []).append(node)
        runs: list[tuple[int, int, list[int]]] = []  # (cid, first, members)
        for cid in sorted(nodes_by_cid):
            nodes = sorted(nodes_by_cid[cid])
            first = nodes[0]
            members = [first]
            for node in nodes[1:]:
                if (node - members[-1] - 1) * vector_bytes <= gap_limit:
                    members.append(node)
                    continue
                runs.append((cid, first, members))
                first = node
                members = [node]
            runs.append((cid, first, members))
        rerank_reads = [ReadDescriptor(
            host.layout.rkey,
            host.layout.addr(self._vectors_offsets[cid]
                             + first * vector_bytes),
            (members[-1] - first + 1) * vector_bytes)
            for cid, first, members in runs]
        vectors = np.empty((len(candidate_slots), metadata.dim),
                           dtype=np.float32)
        if rerank_reads:
            with span(trace, "rerank-fetch"):
                payloads = host.transport.read_batch(
                    rerank_reads, doorbell=host.policy.doorbell_batching)
            for (cid, first, members), payload in zip(runs, payloads):
                view = np.frombuffer(
                    payload, dtype=np.float32,
                    count=(members[-1] - first + 1) * metadata.dim
                ).reshape(-1, metadata.dim)
                rows = [candidate_slots[(cid, node)] for node in members]
                vectors[rows] = view[np.asarray(members, dtype=np.int64)
                                     - first]

        # Exact rerank of each query's global shortlist.
        for query_index, chosen_cids, chosen_nodes, labels in shortlists:
            if not len(chosen_nodes):
                continue
            rows = [candidate_slots[(cid, node)]
                    for cid, node in zip(chosen_cids.tolist(),
                                         chosen_nodes.tolist())]
            with span(trace, "cold-compute"):
                exact = self.kernel.many(queries[query_index],
                                         vectors[rows])
                execution.compute_us += host.node.charge_compute(
                    len(rows), metadata.dim)
                execution.evals += len(rows)
            merger.add(query_index, labels,
                       np.asarray(exact, dtype=np.float64))
        return execution

    def _adc_candidates(self, cold: ColdCluster, tables: np.ndarray,
                        keep_nodes: np.ndarray, beam: int,
                        columns: np.ndarray | None = None
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Candidate node indices + ADC distances for one query.

        ``pq`` extents (degree 0) get an asymmetric scan — over
        ``columns`` when the two-phase split is active, else over every
        subspace; ``vamana`` extents get a greedy best-first walk over
        the flat adjacency, scoring only visited nodes (always with the
        full tables: the walk's pruning depends on score quality).
        """
        if cold.num_nodes == 0 or len(keep_nodes) == 0:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float32))
        if cold.degree == 0 or cold.adjacency is None or cold.medoid < 0:
            if columns is None:
                columns = np.arange(self.codebook.num_subspaces)
            approx = tables[columns[None, :],
                            cold.codes[keep_nodes][:, columns]].sum(axis=1)
            return keep_nodes, approx
        columns = np.arange(self.codebook.num_subspaces)
        # Greedy ADC walk: classic best-first beam over the flat graph.
        scores: dict[int, float] = {}

        def score(node: int) -> float:
            cached = scores.get(node)
            if cached is None:
                cached = float(tables[columns, cold.codes[node]].sum())
                scores[node] = cached
            return cached

        start = int(cold.medoid)
        frontier = [(score(start), start)]
        visited = {start}
        best: list[tuple[float, int]] = []  # max-heap via negated dist
        heapq.heappush(best, (-frontier[0][0], start))
        while frontier:
            dist, node = heapq.heappop(frontier)
            if len(best) >= beam and dist > -best[0][0]:
                break
            for neighbor in cold.adjacency[node].tolist():
                if neighbor == NO_NEIGHBOR or neighbor in visited:
                    continue
                visited.add(neighbor)
                neighbor_dist = score(neighbor)
                if len(best) < beam or neighbor_dist < -best[0][0]:
                    heapq.heappush(frontier, (neighbor_dist, neighbor))
                    heapq.heappush(best, (-neighbor_dist, neighbor))
                    if len(best) > beam:
                        heapq.heappop(best)
        nodes = np.fromiter((node for _, node in best), dtype=np.int64,
                            count=len(best))
        if len(keep_nodes) != cold.num_nodes:
            mask = np.isin(nodes, keep_nodes)
            nodes = nodes[mask]
        approx = np.fromiter((scores[int(node)] for node in nodes),
                             dtype=np.float32, count=len(nodes))
        return nodes, approx

    # ------------------------------------------------------------------
    # Background promotion / demotion
    # ------------------------------------------------------------------
    def rebalance(self, trace: TraceContext | None = None
                  ) -> tuple[int, int]:
        """Move clusters between tiers under the DRAM budget.

        Promotes the hottest recently-cold clusters; to make room it
        demotes the coldest hot clusters, but only when the candidate's
        EWMA score beats the victim's by ``tier_hysteresis`` — the
        hysteresis band is what stops an alternating access pattern from
        ping-ponging a pair of clusters between tiers.  Pinned cache
        entries are never demoted mid-wave.  Returns
        ``(promotions, demotions)`` for this call.
        """
        host = self.host
        cache = host.cache
        now_us = host.node.clock.now_us
        budget = host.config.hot_tier_budget_bytes
        hysteresis = host.config.tier_hysteresis
        metadata = host.metadata
        candidates = sorted(self._accessed_cold)
        self._accessed_cold.clear()
        self._vectors_offsets.clear()
        promotions = 0
        demotions = 0
        with span(trace, "tier-rebalance"):
            if budget is None:
                for cid in candidates:
                    if cid not in self.hot_ids:
                        self.hot_ids.add(cid)
                        promotions += 1
            else:
                scored = sorted(
                    ((cache.frequency(cid, now_us), cid)
                     for cid in candidates if cid not in self.hot_ids),
                    key=lambda pair: (-pair[0], pair[1]))
                hot_bytes = self.hot_tier_bytes()
                for score, cid in scored:
                    size = cluster_read_extent(metadata, cid)[1]
                    if size > budget:
                        continue
                    freed, evicted = self._make_room(
                        hot_bytes + size - budget, score, hysteresis,
                        now_us)
                    hot_bytes -= freed
                    demotions += evicted
                    if hot_bytes + size > budget:
                        continue
                    self.hot_ids.add(cid)
                    hot_bytes += size
                    promotions += 1
        self.promotions += promotions
        self.demotions += demotions
        if trace is not None:
            trace.record_event("tier_promotions", promotions)
            trace.record_event("tier_demotions", demotions)
        return promotions, demotions

    def _make_room(self, need_bytes: int, candidate_score: float,
                   hysteresis: float, now_us: float) -> tuple[int, int]:
        """Demote weakest hot clusters until ``need_bytes`` is freed.

        Stops at the hysteresis band (victim score within
        ``candidate_score / hysteresis``) or when only pinned entries
        remain.  Returns ``(bytes freed, clusters demoted)``.
        """
        host = self.host
        cache = host.cache
        metadata = host.metadata
        freed = 0
        demoted = 0
        while need_bytes - freed > 0 and self.hot_ids:
            victims = sorted(
                ((cache.frequency(cid, now_us), cid)
                 for cid in self.hot_ids),
                key=lambda pair: (pair[0], pair[1]))
            progressed = False
            for victim_score, victim in victims:
                if candidate_score <= hysteresis * victim_score:
                    return freed, demoted
                entry = cache.peek(victim)
                if entry is not None and entry.pins > 0:
                    continue  # searched right now; never demote mid-wave
                self.hot_ids.discard(victim)
                if entry is not None:
                    cache.invalidate(victim)
                    host.node.release_dram(entry.nbytes)
                freed += cluster_read_extent(metadata, victim)[1]
                demoted += 1
                progressed = True
                break
            if not progressed:
                break
        return freed, demoted
