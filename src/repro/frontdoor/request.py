"""Request and outcome records of the multi-tenant front door.

A :class:`Request` is one tenant's single-query call as it arrives at the
front door — before batching, admission, or scheduling have touched it.
A :class:`RequestOutcome` is the same request after the front door is done
with it: answered (possibly with a degraded beam width) or shed, with the
queue delay and end-to-end latency it experienced on the simulated clock.

Everything here is plain data so schedules built from these records can be
compared across runs (the determinism contract: same arrival sequence +
same seed ⇒ identical outcomes).
"""

from __future__ import annotations

import dataclasses
import enum
import math

import numpy as np

__all__ = ["Request", "RequestOutcome", "RequestStatus"]


class RequestStatus(enum.Enum):
    """Terminal state of one front-door request."""

    #: Answered with the requested (or default) beam width.
    OK = "ok"
    #: Answered, but with the overload-degraded ``ef_search`` — the
    #: answer is honest but may recall less than the tenant asked for.
    DEGRADED = "degraded"
    #: Rejected by the tenant's token bucket before queueing.
    SHED_ADMISSION = "shed-admission"
    #: Dropped at dispatch: its deadline had already passed.
    SHED_DEADLINE = "shed-deadline"

    @property
    def answered(self) -> bool:
        return self in (RequestStatus.OK, RequestStatus.DEGRADED)


@dataclasses.dataclass(frozen=True)
class Request:
    """One single-query request as it arrives at the front door."""

    request_id: int
    tenant: str
    query: np.ndarray
    k: int
    arrival_us: float
    #: End-to-end latency budget; ``deadline_us`` derives from it.
    slo_us: float
    #: Explicit beam width; ``None`` defers to the engine's
    #: ``resolve_ef`` (config default, else the paper's ``2k`` rule).
    ef_search: int | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.slo_us <= 0.0:
            raise ValueError(f"slo_us must be > 0, got {self.slo_us}")

    @property
    def deadline_us(self) -> float:
        """Absolute simulated time by which the answer is due."""
        return self.arrival_us + self.slo_us


@dataclasses.dataclass(frozen=True)
class RequestOutcome:
    """What happened to one request, with full timing attribution."""

    request: Request
    status: RequestStatus
    #: When the request's wave formed (entered the engine); NaN for
    #: requests shed at admission (they never queued).
    dispatch_us: float
    #: When the answer (or the shed decision) materialized.
    complete_us: float
    #: Wave that carried (or shed) the request; -1 for admission sheds.
    wave_id: int
    #: Beam width actually used; 0 when the request was never searched.
    ef_used: int
    ids: np.ndarray | None = None
    distances: np.ndarray | None = None

    @property
    def queue_delay_us(self) -> float:
        """Simulated time spent waiting for a wave (0 for admission sheds)."""
        if math.isnan(self.dispatch_us):
            return 0.0
        return self.dispatch_us - self.request.arrival_us

    @property
    def latency_us(self) -> float:
        """End-to-end simulated latency: arrival → answer/decision."""
        return self.complete_us - self.request.arrival_us

    @property
    def deadline_met(self) -> bool:
        return (self.status.answered
                and self.complete_us <= self.request.deadline_us)
