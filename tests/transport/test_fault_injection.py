"""Unit tests for the fault-injecting transport decorator.

These exercise the transport layer in isolation — one registered region,
one queue pair — so every charge and counter can be asserted exactly.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigError,
    CorruptedReadError,
    PartialReadError,
    StaleReadError,
    TransportTimeoutError,
)
from repro.rdma import CostModel, MemoryNode
from repro.rdma.clock import SimClock
from repro.rdma.qp import ReadDescriptor
from repro.rdma.stats import RdmaStats
from repro.transport import (
    FaultInjectingTransport,
    FaultKind,
    FaultPlan,
    Transport,
    connect,
)

PAYLOAD = bytes(range(64))


@pytest.fixture()
def node() -> MemoryNode:
    return MemoryNode()


@pytest.fixture()
def wired(node):
    """(transport, rkey, base_addr) over a 4 KiB region holding PAYLOAD."""
    region = node.register(4096)
    transport = connect(node, SimClock(), CostModel(), RdmaStats())
    transport.write(region.rkey, region.base_addr, PAYLOAD)
    return transport, region.rkey, region.base_addr


def faulty(inner, timeout_us=1000.0, **plan_kwargs):
    return FaultInjectingTransport(inner, FaultPlan(**plan_kwargs),
                                   timeout_us=timeout_us)


class TestFaultPlan:
    def test_schedule_mode_fires_on_exact_ordinals(self):
        plan = FaultPlan(schedule={1: FaultKind.TIMEOUT,
                                   3: FaultKind.CORRUPT_EXTENT})
        decisions = [plan.next_fault() for _ in range(5)]
        assert decisions == [None, FaultKind.TIMEOUT, None,
                             FaultKind.CORRUPT_EXTENT, None]
        assert plan.ops_seen == 5
        assert plan.faults_injected == 2

    def test_probability_mode_is_seed_deterministic(self):
        draws_a = [FaultPlan(seed=42, fault_rate=0.5).next_fault()
                   for _ in range(1)]
        for _ in range(3):
            plan = FaultPlan(seed=42, fault_rate=0.5)
            assert [plan.next_fault()] == draws_a

    def test_different_seeds_differ_eventually(self):
        plan_a = FaultPlan(seed=1, fault_rate=0.5)
        plan_b = FaultPlan(seed=2, fault_rate=0.5)
        seq_a = [plan_a.next_fault() for _ in range(32)]
        seq_b = [plan_b.next_fault() for _ in range(32)]
        assert seq_a != seq_b

    def test_max_faults_caps_injections(self):
        plan = FaultPlan(fault_rate=1.0, kinds=(FaultKind.TIMEOUT,),
                         max_faults=2)
        fired = [plan.next_fault() for _ in range(10)]
        assert sum(kind is not None for kind in fired) == 2
        assert plan.faults_injected == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(fault_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(fault_rate=0.5, kinds=())
        with pytest.raises(ConfigError):
            FaultPlan(max_faults=-1)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ConfigError):
            FaultInjectingTransport(None, FaultPlan(), timeout_us=0.0)


class TestSyncFaults:
    def test_timeout_charges_armed_timeout_and_moves_no_bytes(self, wired):
        inner, rkey, addr = wired
        transport = faulty(inner, timeout_us=500.0,
                           schedule={0: FaultKind.TIMEOUT})
        before_us = transport.clock.now_us
        net_before = transport.stats.network_time_us
        with pytest.raises(TransportTimeoutError) as exc:
            transport.read(rkey, addr, len(PAYLOAD))
        assert transport.clock.now_us - before_us == pytest.approx(500.0)
        assert transport.stats.bytes_read == 0
        assert transport.stats.faults_injected == 1
        # Wasted wait lands in the network ledger (it is exposed time).
        assert (transport.stats.network_time_us - net_before
                == pytest.approx(500.0))
        assert exc.value.op == "READ"

    def test_partial_read_charges_half_timeout(self, wired):
        inner, rkey, addr = wired
        transport = faulty(inner, timeout_us=800.0,
                           schedule={0: FaultKind.PARTIAL_READ})
        before_us = transport.clock.now_us
        with pytest.raises(PartialReadError) as exc:
            transport.read(rkey, addr, len(PAYLOAD))
        assert transport.clock.now_us - before_us == pytest.approx(400.0)
        assert exc.value.expected == len(PAYLOAD)
        assert exc.value.received == len(PAYLOAD) // 2
        assert transport.stats.bytes_read == 0

    @pytest.mark.parametrize("kind,error", [
        (FaultKind.STALE_METADATA, StaleReadError),
        (FaultKind.CORRUPT_EXTENT, CorruptedReadError),
    ])
    def test_post_read_faults_charge_full_wire_cost(self, wired, node,
                                                    kind, error):
        inner, rkey, addr = wired
        # Cost of the same READ on a clean transport, for comparison.
        probe = connect(node, SimClock(), CostModel(), RdmaStats())
        probe.read(rkey, addr, len(PAYLOAD))
        wire_us = probe.clock.now_us

        transport = faulty(inner, schedule={0: kind})
        before_us = transport.clock.now_us
        with pytest.raises(error):
            transport.read(rkey, addr, len(PAYLOAD))
        # The READ really executed: full wire charge, bytes accounted.
        assert transport.clock.now_us - before_us == pytest.approx(wire_us)
        assert transport.stats.bytes_read == len(PAYLOAD)
        assert transport.stats.faults_injected == 1
        # Remote state is intact, so the retry returns the real payload.
        assert transport.read(rkey, addr, len(PAYLOAD)) == PAYLOAD

    def test_batch_faults_report_batch_totals(self, wired):
        inner, rkey, addr = wired
        transport = faulty(inner, schedule={0: FaultKind.PARTIAL_READ})
        descriptors = [ReadDescriptor(rkey, addr, 16),
                       ReadDescriptor(rkey, addr + 16, 16)]
        with pytest.raises(PartialReadError) as exc:
            transport.read_batch(descriptors)
        assert exc.value.expected == 32
        assert exc.value.op == "READ_BATCH"

    def test_writes_and_atomics_never_fault(self, wired):
        inner, rkey, addr = wired
        transport = faulty(inner, fault_rate=1.0)
        transport.write(rkey, addr + 1024, b"abc")
        assert transport.faa(rkey, addr + 2048, 3) == 0
        assert transport.stats.faults_injected == 0
        assert transport.plan.ops_seen == 0


class TestAsyncFaults:
    def test_async_timeout_abandons_inner_completion(self, wired):
        inner, rkey, addr = wired
        transport = faulty(inner, timeout_us=600.0,
                           schedule={0: FaultKind.TIMEOUT})
        pending = transport.read_batch_async(
            [ReadDescriptor(rkey, addr, len(PAYLOAD))])
        before_us = transport.clock.now_us
        with pytest.raises(TransportTimeoutError):
            transport.poll(pending)
        assert transport.clock.now_us - before_us == pytest.approx(600.0)
        # The error completion carried no data.
        assert transport.stats.bytes_read == 0

    def test_async_corrupt_polls_inner_then_raises(self, wired):
        inner, rkey, addr = wired
        transport = faulty(inner, schedule={0: FaultKind.CORRUPT_EXTENT})
        pending = transport.read_batch_async(
            [ReadDescriptor(rkey, addr, len(PAYLOAD))])
        with pytest.raises(CorruptedReadError):
            transport.poll(pending)
        assert transport.stats.bytes_read == len(PAYLOAD)
        # Reissuing the read synchronously succeeds with the true payload.
        assert transport.read_batch(
            [ReadDescriptor(rkey, addr, len(PAYLOAD))]) == [PAYLOAD]

    def test_clean_async_path_unaffected(self, wired):
        inner, rkey, addr = wired
        transport = faulty(inner)  # no schedule, zero rate
        pending = transport.read_batch_async(
            [ReadDescriptor(rkey, addr, len(PAYLOAD))])
        assert transport.poll(pending) == [PAYLOAD]


def test_transport_protocol_conformance(wired):
    inner, _, _ = wired
    assert isinstance(inner, Transport)
    assert isinstance(faulty(inner), Transport)
