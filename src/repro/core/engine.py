"""Building a d-HNSW deployment and the shared remote-layout handle.

:class:`DHnswBuilder` performs the offline pipeline of §3.1–§3.2:

1. uniformly sample representatives and build the three-layer meta-HNSW;
2. classify every corpus vector to its nearest representative, forming
   partitions;
3. build one sub-HNSW per partition — in-process or fanned over a
   process pool (``DHnswConfig.build_workers``), byte-identically;
4. serialize the clusters and stream them into paired groups with shared
   overflow areas (placement uses sizes only, so blobs are produced and
   released one at a time);
5. register a remote region on the memory node and write blobs + the
   versioned global metadata block through the transport layer.

The result is a :class:`RemoteLayout` — everything a compute instance
needs to reach the index — plus the meta-HNSW that every compute instance
caches locally.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

import numpy as np

from repro.baselines.vamana import VamanaIndex
from repro.core.build_pool import BuildPool
from repro.core.config import DHnswConfig
from repro.core.meta_index import MetaHnsw, sample_representatives
from repro.core.partitions import (Partitioning, assign_partitions,
                                   build_sub_hnsws, cluster_build_tasks)
from repro.errors import LayoutError
from repro.hnsw.parallel_build import build_cluster_blob
from repro.layout.allocator import RegionAllocator
from repro.layout.cold import (NO_NEIGHBOR, codebook_blob_size,
                               serialize_codebook, serialize_cold_cluster)
from repro.layout.group_layout import plan_groups
from repro.layout.metadata import (ColdDirectory, ColdExtentEntry,
                                   GlobalMetadata, rebuild_lock_offset)
from repro.mutation.reclaim import RetiredExtentLog
from repro.layout.serializer import (cluster_label_section_offset,
                                     peek_cluster_geometry,
                                     serialize_cluster,
                                     serialized_cluster_size)
from repro.pq.codebook import PqCodebook
from repro.rdma import MemoryNode, MemoryRegion
from repro.rdma.clock import SimClock
from repro.rdma.control import ControlClient, MemoryDaemon
from repro.rdma.network import CostModel
from repro.rdma.stats import RdmaStats
from repro.transport.replica import ReplicatedTransport
from repro.transport.sim import connect as connect_transport

__all__ = ["RemoteLayout", "BuildReport", "DHnswBuilder"]

_METADATA_ALIGN = 4096


@dataclasses.dataclass
class RemoteLayout:
    """Handle to a d-HNSW layout resident in disaggregated memory.

    Shared by every compute instance of a deployment.  ``metadata`` mirrors
    the authoritative block at the head of the remote region; clients keep
    their *own* cached copies and use the remote version counter to detect
    staleness, exactly as the paper's compute instances do.
    """

    memory_node: MemoryNode
    region: MemoryRegion
    allocator: RegionAllocator
    metadata: GlobalMetadata
    dim: int
    daemon: MemoryDaemon | None = None
    #: Secondary memory nodes holding byte-identical copies of the region
    #: (``DHnswConfig.replication_factor`` - 1 of them).  Each registered
    #: the same capacity as a fresh node, so rkey and base_addr match the
    #: primary and one address space reaches every replica.
    replicas: list[MemoryNode] = dataclasses.field(default_factory=list)
    #: Grace-period ledger of extents retired by shadow rebuilds.
    #: Host-side control-plane state shared by every client of the
    #: deployment; space returns to ``allocator`` only once all
    #: registered readers have observed the retiring version.
    retired: RetiredExtentLog = dataclasses.field(
        default_factory=RetiredExtentLog)

    @property
    def memory_nodes(self) -> list[MemoryNode]:
        """All replicas of the pool, primary first."""
        return [self.memory_node, *self.replicas]

    @property
    def rkey(self) -> int:
        """Remote key of the registered region."""
        return self.region.rkey

    def addr(self, offset: int) -> int:
        """Absolute remote address of a region-relative offset."""
        return self.region.base_addr + offset

    @property
    def metadata_nbytes(self) -> int:
        """Serialized size of the metadata block.

        Computed from the actual packed form so the optional cold-tier
        directory is included when present.
        """
        return len(self.metadata.pack())


@dataclasses.dataclass(frozen=True)
class BuildReport:
    """What the offline build produced and what it cost."""

    num_vectors: int
    num_partitions: int
    num_groups: int
    meta_hnsw_bytes: int
    total_blob_bytes: int
    region_capacity_bytes: int
    partition_sizes: np.ndarray
    build_network: RdmaStats


class DHnswBuilder:
    """Offline construction of a d-HNSW deployment."""

    def __init__(self, config: DHnswConfig | None = None,
                 cost_model: CostModel | None = None,
                 memory_node: MemoryNode | None = None) -> None:
        self.config = config if config is not None else DHnswConfig()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.memory_node = (memory_node if memory_node is not None
                            else MemoryNode())

    # ------------------------------------------------------------------
    def build(self, vectors: np.ndarray,
              labels: np.ndarray | None = None
              ) -> tuple[MetaHnsw, RemoteLayout, BuildReport]:
        """Run the full §3.1–§3.2 pipeline over ``vectors``.

        ``labels`` optionally assigns each corpus row a global id
        (sharded deployments use corpus-wide row numbers).
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[0] < 1:
            raise LayoutError("cannot build over an empty corpus")
        meta, partitioning = self._build_meta(vectors)
        codebook = None
        if self.config.cold_tier != "off":
            codebook = self._train_codebook(vectors)
        source = _ClusterBlobSource(vectors, partitioning,
                                    self.config.sub_params, labels,
                                    self.config.build_workers)
        layout, build_stats = self._write_layout(
            source, vectors.shape[1], partitioning.num_partitions,
            codebook=codebook)
        report = BuildReport(
            num_vectors=vectors.shape[0],
            num_partitions=meta.num_partitions,
            num_groups=layout.metadata.num_groups,
            meta_hnsw_bytes=meta.serialized_size_bytes(),
            total_blob_bytes=source.total_blob_bytes,
            region_capacity_bytes=layout.region.length,
            partition_sizes=partitioning.sizes(),
            build_network=build_stats,
        )
        return meta, layout, report

    # ------------------------------------------------------------------
    def _build_meta(self, vectors: np.ndarray
                    ) -> tuple[MetaHnsw, Partitioning]:
        rng = np.random.default_rng(self.config.seed)
        num_reps = self.config.derived_num_representatives(vectors.shape[0])
        rep_rows = sample_representatives(vectors.shape[0], num_reps, rng)
        meta = MetaHnsw(vectors[rep_rows], self.config.meta_params)
        partitioning = assign_partitions(vectors, meta)
        return meta, partitioning

    def _train_codebook(self, vectors: np.ndarray) -> PqCodebook:
        """Train the deployment's PQ codebook on a deterministic sample.

        The sample is an even stride over corpus rows — no RNG — so the
        codebook (and every cold extent derived from it) is byte-identical
        across rebuilds at any ``build_workers`` count.
        """
        codebook = PqCodebook(vectors.shape[1], self.config.pq_subspaces,
                              self.config.pq_bits, seed=self.config.seed)
        limit = 65536
        step = max(1, vectors.shape[0] // limit)
        codebook.train(vectors[::step][:limit], seed=self.config.seed)
        return codebook

    def _write_layout(self, source: "_ClusterBlobSource",
                      dim: int, num_clusters: int,
                      codebook: PqCodebook | None = None
                      ) -> tuple[RemoteLayout, RdmaStats]:
        num_groups = (num_clusters + 1) // 2
        metadata_size = GlobalMetadata.packed_size(
            num_clusters, num_groups, with_cold=codebook is not None)
        # The reserve holds the metadata block followed by one rebuild
        # lock word per group (region bytes start zeroed = unlocked);
        # ``rebuild_lock_offset(metadata_size, num_groups)`` is one past
        # the last lock word.
        reserve_end = rebuild_lock_offset(metadata_size, num_groups)
        reserve = reserve_end + (-reserve_end) % _METADATA_ALIGN
        plans, cluster_entries, group_entries = plan_groups(
            source.sizes(), dim, self.config.overflow_capacity_records,
            reserve)
        layout_end = plans[-1].end_offset if plans else reserve
        capacity = int(layout_end * self.config.region_headroom) + reserve
        if codebook is not None:
            # Room for the cold extents and codebook blob past the hot
            # layout: codes + adjacency are a small fraction of the
            # full-precision bytes, bounded here by a quarter.
            capacity += (codebook_blob_size(codebook) + layout_end // 4
                         + _METADATA_ALIGN)

        # Registration goes through the memory node's control daemon —
        # the one task the paper leaves on the memory instance's CPU.
        clock = SimClock()
        daemon = MemoryDaemon(self.memory_node)
        control = ControlClient(daemon, clock, self.cost_model)
        rkey, _, _ = control.alloc_region(capacity)
        region = self.memory_node.get_region(rkey)

        # Secondary replicas: fresh nodes register identically-sized
        # regions, so rkey/base_addr line up with the primary and the
        # same descriptors address every copy.
        replica_nodes: list[MemoryNode] = []
        for i in range(1, self.config.replication_factor):
            node = MemoryNode(name=f"{self.memory_node.name}-r{i}")
            mirror = node.register(capacity)
            if (mirror.rkey, mirror.base_addr) != (region.rkey,
                                                   region.base_addr):
                raise LayoutError(
                    f"replica {i} registered (rkey={mirror.rkey}, "
                    f"base=0x{mirror.base_addr:x}) but the primary is "
                    f"(rkey={region.rkey}, base=0x{region.base_addr:x}); "
                    f"replica nodes must be fresh")
            replica_nodes.append(node)

        allocator = RegionAllocator(capacity, metadata_reserve=reserve)
        # Claim the initial groups from the allocator so rebuild
        # relocations start allocating at the layout tail.
        if layout_end > reserve:
            allocator.allocate(layout_end - reserve)

        metadata = GlobalMetadata(
            version=1, dim=dim,
            overflow_capacity_records=self.config.overflow_capacity_records,
            clusters=cluster_entries, groups=group_entries)
        layout = RemoteLayout(memory_node=self.memory_node, region=region,
                              allocator=allocator, metadata=metadata,
                              dim=dim, daemon=daemon, replicas=replica_nodes)

        # Bulk-load through a build-time transport; traffic is reported
        # separately from query-time stats.  With replication the load
        # goes through a ReplicatedTransport so the same write loop fans
        # every blob out to all k nodes.
        stats = RdmaStats()
        transport = connect_transport(self.memory_node, clock,
                                      self.cost_model, stats)
        if replica_nodes:
            mirrors = [connect_transport(node, clock, self.cost_model, stats)
                       for node in replica_nodes]
            transport = ReplicatedTransport([transport, *mirrors],
                                            seed=self.config.seed)
        blobs = source.blobs()
        cold_blobs: list[bytes | None] = [None] * num_clusters
        for plan in plans:
            blob = self._next_blob(blobs, plan.first_cluster_id,
                                   plan.first_nbytes)
            transport.write(region.rkey, layout.addr(plan.first_offset),
                            blob)
            if codebook is not None:
                cold_blobs[plan.first_cluster_id] = self._cold_blob(
                    blob, plan.first_offset, codebook)
            if plan.second_cluster_id is not None:
                blob = self._next_blob(blobs, plan.second_cluster_id,
                                       plan.second_nbytes)
                transport.write(region.rkey,
                                layout.addr(plan.second_offset), blob)
                if codebook is not None:
                    cold_blobs[plan.second_cluster_id] = self._cold_blob(
                        blob, plan.second_offset, codebook)
            # Overflow areas start zeroed; fresh registrations already are.
        if codebook is not None:
            # Cold extents and the codebook blob land past the hot layout
            # in cluster-id order, so off/pq builds share identical hot
            # bytes and the cold section is itself deterministic.
            extents = []
            for cold_blob in cold_blobs:
                assert cold_blob is not None
                offset = allocator.allocate(len(cold_blob))
                transport.write(region.rkey, layout.addr(offset), cold_blob)
                extents.append(ColdExtentEntry(offset, len(cold_blob)))
            book_blob = serialize_codebook(codebook)
            book_offset = allocator.allocate(len(book_blob))
            transport.write(region.rkey, layout.addr(book_offset), book_blob)
            metadata.cold = ColdDirectory(codebook_offset=book_offset,
                                          codebook_length=len(book_blob),
                                          extents=extents)
        transport.write(region.rkey, layout.addr(0), metadata.pack())
        transport.close()
        return layout, stats

    def _cold_blob(self, blob: bytes, blob_offset: int,
                   codebook: PqCodebook) -> bytes:
        """Build one cluster's cold extent from its hot blob's bytes.

        Labels and vectors are viewed straight out of the serialized
        blob (labels right after the header, vectors in the final
        section), so the cold form is derived from exactly the bytes on
        the wire — never from a parallel in-memory copy that could
        drift.
        """
        cluster_id, num_nodes, dim = peek_cluster_geometry(blob)
        labels = np.frombuffer(blob, dtype=np.int64, count=num_nodes,
                               offset=cluster_label_section_offset())
        vectors = np.frombuffer(
            blob, dtype=np.float32, count=num_nodes * dim,
            offset=len(blob) - 4 * num_nodes * dim).reshape(num_nodes, dim)
        codes = (codebook.encode(vectors) if num_nodes else
                 np.empty((0, codebook.num_subspaces), dtype=np.uint8))
        vectors_offset = blob_offset + len(blob) - 4 * num_nodes * dim
        medoid = -1
        adjacency = None
        if self.config.cold_tier == "vamana":
            degree = max(2, self.config.vamana_degree)
            adjacency = np.full((num_nodes, degree), NO_NEIGHBOR,
                                dtype=np.uint32)
            if num_nodes:
                index = VamanaIndex(dim, r=degree,
                                    seed=self.config.seed + cluster_id)
                index.build(vectors)
                for node in range(num_nodes):
                    neighbors = index.graph.neighbors(node, 0)[:degree]
                    adjacency[node, :len(neighbors)] = neighbors
                medoid = (index.medoid if index.medoid is not None
                          else -1)
        return serialize_cold_cluster(cluster_id, labels, codes,
                                      vectors_offset, medoid=medoid,
                                      adjacency=adjacency)

    @staticmethod
    def _next_blob(blobs: Iterator[tuple[int, bytes]], cluster_id: int,
                   nbytes: int | None) -> bytes:
        """Pull the next streamed blob, guarding serializer/planner drift."""
        actual_id, blob = next(blobs)
        if actual_id != cluster_id or len(blob) != nbytes:
            raise LayoutError(
                f"planned cluster {cluster_id} ({nbytes} B) but serialized "
                f"cluster {actual_id} ({len(blob)} B)")
        return blob


class _ClusterBlobSource:
    """Streams cluster sizes, then blobs, in cluster-id order.

    Placement only needs sizes (:func:`plan_groups` consumes
    :meth:`sizes` as an iterator with a running byte total), so blobs
    are materialized one at a time during the write loop and released
    as soon as they are written — the build never holds every blob at
    once.

    ``workers == 0``: sub-HNSWs build in-process (exact sizes come from
    :func:`serialized_cluster_size` without serializing) and each index
    is dropped right after its blob is produced.  ``workers >= 1``:
    per-cluster tasks fan out over a :class:`BuildPool`; workers return
    serialized blobs, which are byte-identical to the in-process build's
    because every task derives its seed from the root seed + cluster id.
    """

    def __init__(self, vectors: np.ndarray, partitioning: Partitioning,
                 params, labels: np.ndarray | None, workers: int) -> None:
        self.total_blob_bytes = 0
        self._blobs: list[bytes | None] | None = None
        self._indexes: list | None = None
        if workers > 0:
            tasks = cluster_build_tasks(vectors, partitioning, params,
                                        labels=labels)
            with BuildPool(workers) as pool:
                self._blobs = list(pool.map(build_cluster_blob, tasks))
        else:
            self._indexes = build_sub_hnsws(vectors, partitioning, params,
                                            labels=labels)

    def sizes(self) -> Iterator[tuple[int, int]]:
        """Yield ``(cluster_id, blob size)`` while summing the total."""
        if self._blobs is not None:
            for cluster_id, blob in enumerate(self._blobs):
                self.total_blob_bytes += len(blob)
                yield cluster_id, len(blob)
        else:
            for cluster_id, index in enumerate(self._indexes):
                nbytes = serialized_cluster_size(index)
                self.total_blob_bytes += nbytes
                yield cluster_id, nbytes

    def blobs(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(cluster_id, blob)`` once each, releasing as it goes."""
        if self._blobs is not None:
            for cluster_id in range(len(self._blobs)):
                blob = self._blobs[cluster_id]
                self._blobs[cluster_id] = None
                yield cluster_id, blob
        else:
            for cluster_id in range(len(self._indexes)):
                blob = serialize_cluster(self._indexes[cluster_id],
                                         cluster_id)
                self._indexes[cluster_id] = None
                yield cluster_id, blob
