"""Churn benchmark: concurrent writers against live readers, gated.

PR 10 moves the mutation path into ``repro.mutation``: CAS-arbitrated
multi-writer slot reservation, background shadow rebuilds with a
version-stamped cutover, and epoch-consistent reads with grace-period
reclamation.  This harness drives the whole story and gates it:

* **mixed read/write phases** — ``k`` concurrent writers interleaved
  with a closed-loop reader at 95/5 and 50/50 read/write mixes.
  Gates: **zero wrong or torn answers** — every read's results are
  bit-identical to a serialized oracle run that replays the same global
  op order through a *single* writer on a fresh build (op-granularity
  determinism makes the layouts equivalent per published version) —
  and **recall@10 under churn >= 0.95x** the no-churn baseline;
* **in-flight shadow rebuild** — a rebuild advanced step by step
  (acquire / snapshot / build / write / cutover) with reader batches
  between every step.  Gates: **search p99 during the rebuild <= 1.5x
  steady state**, and **no mutation stage ever appears in a reader's
  trace** — the build's wall-clock lives on the rebuilder, never in a
  reader's critical path.

Any violated gate exits non-zero, so the CI churn-smoke job doubles as
a regression gate.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_churn.py            # full
    PYTHONPATH=src python benchmarks/perf/bench_churn.py --ci
    PYTHONPATH=src python benchmarks/perf/bench_churn.py --quick

Writes ``benchmarks/perf/BENCH_churn.json`` (override with ``--output``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import time

import numpy as np

from repro.cluster import Deployment
from repro.core import DHnswConfig
from repro.core.client import DHnswClient
from repro.core.fsck import fsck
from repro.datasets import exact_knn
from repro.datasets.synthetic import make_clustered
from repro.mutation.rebuild import ShadowRebuild

DEFAULT_OUTPUT = pathlib.Path(__file__).parent / "BENCH_churn.json"

#: Inserted vectors come from a distribution shifted this far from the
#: base corpus, so churn does not perturb the queries' true neighbours
#: and recall stays comparable against the static ground truth.
INSERT_SHIFT = 10.0

#: Mutation stages that must never appear in a reader's trace.
MUTATION_STAGES = {"classify", "reserve", "snapshot", "build", "publish"}

#: Read/write mixes to gate (fraction of ops that are writes).
MIXES = {"95/5": 0.05, "50/50": 0.50}

SCALES = {
    "full": dict(num_vectors=40_000, dim=48, gen_clusters=80,
                 num_representatives=32, batch_size=64, ops_per_mix=240,
                 writers=3, capacity=24, steady_batches=12,
                 inflight_batches_per_step=3,
                 p99_inflight_factor=1.5, recall_floor=0.95),
    "ci": dict(num_vectors=12_000, dim=32, gen_clusters=48,
               num_representatives=24, batch_size=48, ops_per_mix=140,
               writers=3, capacity=16, steady_batches=10,
               inflight_batches_per_step=3,
               p99_inflight_factor=1.5, recall_floor=0.95),
    "quick": dict(num_vectors=5_000, dim=16, gen_clusters=20,
                  num_representatives=10, batch_size=32, ops_per_mix=80,
                  writers=2, capacity=12, steady_batches=8,
                  inflight_batches_per_step=2,
                  p99_inflight_factor=1.5, recall_floor=0.95),
}


def check(condition: bool, what: str) -> None:
    if not condition:
        raise SystemExit(f"ACCEPTANCE FAILURE: {what}")


def p99(latencies: list[float]) -> float:
    return float(np.percentile(np.asarray(latencies), 99))


def batch_slices(queries: np.ndarray, batch_size: int, batches: int):
    """Deterministic rotating batches so phases see varied queries."""
    out = []
    for index in range(batches):
        rolled = np.roll(queries, -index * 7, axis=0)
        out.append(np.ascontiguousarray(rolled[:batch_size]))
    return out


def build_schedule(write_fraction: float, total_ops: int,
                   num_writers: int, seed: int):
    """Deterministic global op order for one mix.

    Each element is ``("read", batch_index)`` or
    ``("write", writer_index, write_index)``; writers take writes
    round-robin, so every writer stays active throughout the run.
    """
    writes = max(1, round(total_ops * write_fraction))
    reads = total_ops - writes
    flags = np.zeros(total_ops, dtype=bool)
    flags[:writes] = True
    rng = np.random.default_rng(seed)
    flags = flags[rng.permutation(total_ops)]
    schedule = []
    read_index = write_index = 0
    for is_write in flags:
        if is_write:
            schedule.append(("write", write_index % num_writers,
                             write_index))
            write_index += 1
        else:
            schedule.append(("read", read_index))
            read_index += 1
    return schedule, writes, reads


def recall_at_10(results, truth: np.ndarray) -> float:
    hits = 0
    for result, want in zip(results, truth):
        hits += len(set(result.ids.tolist()) & set(want[:10].tolist()))
    return hits / (10 * len(results))


def run_schedule(deployment, config, schedule, read_batches,
                 insert_vectors, num_writers: int):
    """Execute one mix's global op order; returns answers + metrics.

    ``num_writers == 1`` is the serialized oracle: the identical op
    order pushed through a single writer client.
    """
    writers = [DHnswClient(deployment.layout, deployment.meta, config,
                           cost_model=deployment.cost_model,
                           name=f"writer{i}")
               for i in range(num_writers)]
    reader = deployment.make_client(deployment.scheme, name="reader")
    answers = []
    latencies = []
    recalls = []
    for op in schedule:
        if op[0] == "write":
            _, writer_index, write_index = op
            writers[writer_index % num_writers].insert(
                insert_vectors[write_index], 1_000_000 + write_index)
        else:
            _, read_index = op
            queries, truth = read_batches[read_index % len(read_batches)]
            batch = reader.search_batch(queries, k=10, ef_search=48)
            answers.append([(r.ids.tolist(), r.distances.tolist())
                            for r in batch.results])
            latencies.append(batch.latency_per_query_us)
            recalls.append(recall_at_10(batch.results, truth))
            stages = {stage.name for stage in batch.trace.report()}
            check(not stages & MUTATION_STAGES,
                  f"mutation stages {stages & MUTATION_STAGES} leaked "
                  f"into a reader trace")
    stats = {
        "rebuilds_led": sum(w.mutation.stats.rebuilds_led
                            for w in writers),
        "rebuilds_yielded": sum(w.mutation.stats.rebuilds_yielded
                                for w in writers),
        "sealed_retries": sum(w.mutation.stats.sealed_retries
                              for w in writers),
        "records_migrated": sum(w.mutation.stats.records_migrated
                                for w in writers),
        "cas_failures": sum(w.node.stats.cas_failures for w in writers),
        "reclaimed_bytes": sum(w.mutation.stats.reclaimed_bytes
                               for w in writers)
        + reader.mutation.stats.reclaimed_bytes,
    }
    for writer in writers:
        writer.close()
    reader.close()
    return answers, latencies, recalls, stats


def run_mix(mix_name: str, write_fraction: float, corpus, queries, truth,
            config, scale, baseline_recall: float):
    """One mixed phase: churn run, serialized-oracle replay, gates."""
    schedule, writes, reads = build_schedule(
        write_fraction, scale["ops_per_mix"], scale["writers"],
        seed=hash_mix(mix_name))
    insert_vectors = (make_clustered(
        writes, scale["dim"], num_clusters=scale["gen_clusters"],
        cluster_std=0.08, rng=np.random.default_rng(7 + writes))
        + INSERT_SHIFT).astype(np.float32)
    read_batches = [(batch, truth_for(batch, queries, truth))
                    for batch in batch_slices(queries,
                                              scale["batch_size"], 6)]

    churn = Deployment(corpus, config, simulate_link_contention=False)
    answers, latencies, recalls, stats = run_schedule(
        churn, config, schedule, read_batches, insert_vectors,
        scale["writers"])
    report = fsck(churn.layout)
    check(report.clean,
          f"[{mix_name}] layout not fsck-clean after churn:\n"
          + report.summary())

    oracle = Deployment(corpus, config, simulate_link_contention=False)
    oracle_answers, _, _, _ = run_schedule(
        oracle, config, schedule, read_batches, insert_vectors,
        num_writers=1)

    torn = sum(1 for got, want in zip(answers, oracle_answers)
               if got != want)
    check(torn == 0,
          f"[{mix_name}] {torn}/{len(answers)} read batches diverged "
          f"from the serialized single-writer oracle")
    churn_recall = float(np.mean(recalls))
    check(churn_recall >= scale["recall_floor"] * baseline_recall,
          f"[{mix_name}] recall@10 under churn {churn_recall:.4f} fell "
          f"below {scale['recall_floor']:.2f}x the no-churn baseline "
          f"{baseline_recall:.4f}")
    return {
        "write_fraction": write_fraction,
        "writers": scale["writers"],
        "ops": {"writes": writes, "read_batches": reads},
        "recall_at_10": round(churn_recall, 4),
        "recall_vs_baseline": round(churn_recall / baseline_recall, 4),
        "search_p99_us_per_query": round(p99(latencies), 3),
        "search_mean_us_per_query": round(float(np.mean(latencies)), 3),
        "writer_contention": stats,
        "oracle_batches_compared": len(answers),
        "torn_or_wrong_answers": torn,
    }


def hash_mix(mix_name: str) -> int:
    """Stable small seed per mix (``hash()`` is salted per process)."""
    return sum(ord(char) for char in mix_name)


def truth_for(batch: np.ndarray, queries: np.ndarray,
              truth: np.ndarray) -> np.ndarray:
    """Ground-truth rows aligned with a rolled batch slice."""
    index = {queries[i].tobytes(): i for i in range(len(queries))}
    return np.stack([truth[index[row.tobytes()]] for row in batch])


def run_inflight_phase(corpus, queries, config, scale):
    """Steady-state vs in-flight-rebuild read latency, trace-verified."""
    deployment = Deployment(corpus, config, simulate_link_contention=False)
    writer = DHnswClient(deployment.layout, deployment.meta, config,
                         cost_model=deployment.cost_model, name="writer0")
    reader = deployment.make_client(deployment.scheme, name="reader")
    batches = batch_slices(queries, scale["batch_size"],
                           scale["steady_batches"])

    # Fill one group to capacity so a rebuild has real work to do.
    probe = queries[0]
    for i in range(scale["capacity"]):
        writer.insert(probe + i * 1e-4, 2_000_000 + i)
    group_id = writer.metadata.clusters[
        writer.meta.classify(probe)].group_id

    reader.search_batch(batches[0], k=10, ef_search=48)  # warm the cache
    steady = [reader.search_batch(batch, k=10,
                                  ef_search=48).latency_per_query_us
              for batch in batches]

    rebuild = ShadowRebuild(writer, group_id)
    inflight = []
    steps = []
    rotation = 0
    build_wall_start = time.perf_counter()
    while not rebuild.done:
        steps.append(rebuild.step())
        for _ in range(scale["inflight_batches_per_step"]):
            batch = reader.search_batch(
                batches[rotation % len(batches)], k=10, ef_search=48)
            rotation += 1
            inflight.append(batch.latency_per_query_us)
            stages = {stage.name for stage in batch.trace.report()}
            check(not stages & MUTATION_STAGES,
                  f"rebuild stage leaked into a reader trace during "
                  f"step '{steps[-1]}': {stages & MUTATION_STAGES}")
    rebuild_wall_s = time.perf_counter() - build_wall_start
    check(steps == list(ShadowRebuild.STEPS),
          f"rebuild steps ran out of order: {steps}")
    check(reader.metadata.version == writer.metadata.version,
          "reader never observed the cutover's published version")

    steady_p99, inflight_p99 = p99(steady), p99(inflight)
    check(inflight_p99 <= steady_p99 * scale["p99_inflight_factor"],
          f"search p99 during the in-flight rebuild "
          f"({inflight_p99:.1f} us) blew past "
          f"{scale['p99_inflight_factor']:.1f}x steady state "
          f"({steady_p99:.1f} us)")
    report = fsck(deployment.layout)
    check(report.clean, "layout not fsck-clean after the in-flight "
          "rebuild:\n" + report.summary())
    result = {
        "rebuilt_group": group_id,
        "steady_p99_us_per_query": round(steady_p99, 3),
        "inflight_p99_us_per_query": round(inflight_p99, 3),
        "inflight_vs_steady": round(inflight_p99 / steady_p99, 3),
        "reader_batches_during_rebuild": len(inflight),
        "rebuild_wall_seconds": round(rebuild_wall_s, 3),
        "records_migrated": rebuild.migrated_records,
    }
    writer.close()
    reader.close()
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--ci", action="store_true",
                       help="12k-vector churn-smoke run")
    group.add_argument("--quick", action="store_true",
                       help="5k-vector local iteration run")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    mode = "ci" if args.ci else "quick" if args.quick else "full"
    scale = SCALES[mode]

    rng = np.random.default_rng(42)
    corpus = make_clustered(scale["num_vectors"], scale["dim"],
                            num_clusters=scale["gen_clusters"],
                            cluster_std=0.08, rng=rng)
    queries = make_clustered(scale["batch_size"] * 4, scale["dim"],
                             num_clusters=scale["gen_clusters"],
                             cluster_std=0.08, rng=rng)
    truth = exact_knn(corpus, queries, 10)

    config = DHnswConfig(num_representatives=scale["num_representatives"],
                         nprobe=3, ef_meta=24, cache_fraction=0.15,
                         batch_size=scale["batch_size"],
                         overflow_capacity_records=scale["capacity"],
                         seed=42)

    # --- no-churn baseline recall ----------------------------------------
    build_start = time.perf_counter()
    baseline = Deployment(corpus, config, simulate_link_contention=False)
    build_seconds = time.perf_counter() - build_start
    calm = baseline.make_client(baseline.scheme, name="calm")
    read_batches = batch_slices(queries, scale["batch_size"], 6)
    baseline_recall = float(np.mean([
        recall_at_10(calm.search_batch(batch, k=10, ef_search=48).results,
                     truth_for(batch, queries, truth))
        for batch in read_batches]))
    calm.close()

    # --- mixed phases ----------------------------------------------------
    mixes = {}
    for mix_name, write_fraction in MIXES.items():
        mixes[mix_name] = run_mix(mix_name, write_fraction, corpus,
                                  queries, truth, config, scale,
                                  baseline_recall)

    # --- in-flight rebuild phase -----------------------------------------
    inflight = run_inflight_phase(corpus, queries, config, scale)

    report = {
        "benchmark": "concurrent-writer churn with shadow rebuilds",
        "mode": mode,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
        },
        "scenario": {
            "num_vectors": scale["num_vectors"],
            "dim": scale["dim"],
            "writers": scale["writers"],
            "ops_per_mix": scale["ops_per_mix"],
            "overflow_capacity_records": scale["capacity"],
            "insert_shift": INSERT_SHIFT,
        },
        "build_seconds": round(build_seconds, 1),
        "baseline_recall_at_10": round(baseline_recall, 4),
        "mixes": mixes,
        "inflight_rebuild": inflight,
        "acceptance": {
            "torn_or_wrong_answers": sum(
                mix["torn_or_wrong_answers"] for mix in mixes.values()),
            "recall_floor": scale["recall_floor"],
            "p99_inflight_factor": scale["p99_inflight_factor"],
            "reader_traces_free_of_mutation_stages": True,
            "fsck_clean_after_churn": True,
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({key: report[key] for key in
                      ("baseline_recall_at_10", "mixes",
                       "inflight_rebuild", "acceptance")}, indent=2))
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
