"""Product quantization: codebooks, ADC, re-ranked search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import exact_knn
from repro.errors import ConfigError, EmptyIndexError
from repro.pq import PqCodebook, PqRerankIndex


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(0)
    data = rng.standard_normal((1500, 16)).astype(np.float32)
    queries = rng.standard_normal((20, 16)).astype(np.float32)
    return data, queries, exact_knn(data, queries, 10)


@pytest.fixture(scope="module")
def codebook(corpus):
    data, _, _ = corpus
    book = PqCodebook(16, num_subspaces=4, bits=6, seed=1)
    book.train(data)
    return book


class TestCodebook:
    def test_construction_validation(self):
        with pytest.raises(ConfigError, match="divide"):
            PqCodebook(10, num_subspaces=3)
        with pytest.raises(ConfigError, match="bits"):
            PqCodebook(8, num_subspaces=2, bits=9)

    def test_untrained_rejects_encode(self):
        book = PqCodebook(8, num_subspaces=2, bits=4)
        with pytest.raises(ConfigError, match="not trained"):
            book.encode(np.zeros((1, 8), dtype=np.float32))

    def test_training_sample_too_small(self):
        book = PqCodebook(8, num_subspaces=2, bits=8)
        with pytest.raises(ConfigError, match="training"):
            book.train(np.zeros((10, 8), dtype=np.float32))

    def test_code_shape_and_range(self, codebook, corpus):
        data, _, _ = corpus
        codes = codebook.encode(data[:50])
        assert codes.shape == (50, 4)
        assert codes.dtype == np.uint8
        assert codes.max() < codebook.num_centroids

    def test_code_bytes(self, codebook):
        assert codebook.code_bytes == 4  # vs 64 B of float32

    def test_reconstruction_beats_zero_baseline(self, codebook, corpus):
        data, _, _ = corpus
        error = codebook.quantization_error(data[:200])
        zero_error = float((data[:200] ** 2).sum(axis=1).mean())
        assert 0 < error < zero_error / 2

    def test_more_subspaces_less_error(self, corpus):
        data, _, _ = corpus
        coarse = PqCodebook(16, num_subspaces=2, bits=6, seed=2)
        fine = PqCodebook(16, num_subspaces=8, bits=6, seed=2)
        coarse.train(data)
        fine.train(data)
        assert (fine.quantization_error(data[:200])
                < coarse.quantization_error(data[:200]))

    def test_decode_encode_fixed_point(self, codebook, corpus):
        """Decoding then re-encoding must be a fixed point: centroids
        quantize to themselves."""
        data, _, _ = corpus
        codes = codebook.encode(data[:30])
        recoded = codebook.encode(codebook.decode(codes))
        np.testing.assert_array_equal(codes, recoded)


class TestAdc:
    def test_adc_matches_distance_to_reconstruction(self, codebook,
                                                    corpus):
        data, queries, _ = corpus
        codes = codebook.encode(data[:100])
        reconstructed = codebook.decode(codes)
        adc = codebook.adc_distances(queries[0], codes)
        from repro.hnsw.distance import DistanceKernel
        exact = DistanceKernel(16).many(queries[0], reconstructed)
        np.testing.assert_allclose(adc, exact, rtol=1e-3, atol=1e-2)

    def test_adc_table_shape(self, codebook, corpus):
        _, queries, _ = corpus
        tables = codebook.adc_tables(queries[0])
        assert tables.shape == (4, codebook.num_centroids)
        assert (tables >= 0).all()


class TestPqRerankIndex:
    @pytest.fixture(scope="class")
    def index(self, codebook, corpus):
        data, _, _ = corpus
        built = PqRerankIndex(codebook)
        built.add(data)
        return built

    def test_requires_trained_codebook(self):
        with pytest.raises(ConfigError):
            PqRerankIndex(PqCodebook(8, num_subspaces=2, bits=4))

    def test_reranked_recall_beats_pure_adc(self, index, corpus):
        _, queries, truth = corpus

        def recall(rerank):
            hits = 0
            for row, query in enumerate(queries):
                labels, _ = index.search(query, 10, rerank=rerank)
                hits += len(set(labels.tolist())
                            & set(truth[row].tolist()))
            return hits / 200

        assert recall(100) > recall(0)
        assert recall(100) >= 0.85

    def test_compression_ratio(self, index):
        # 4 code bytes vs 64 float bytes per vector: 16x.
        assert index.full_bytes / index.compressed_bytes == 16.0

    def test_rerank_zero_uses_no_exact_distances(self, index, corpus):
        _, queries, _ = corpus
        index.reset_compute_counter()
        index.search(queries[0], 5, rerank=0)
        assert index.compute_count == 0

    def test_rerank_bounds_exact_work(self, index, corpus):
        _, queries, _ = corpus
        index.reset_compute_counter()
        index.search(queries[0], 5, rerank=37)
        assert index.compute_count == 37

    def test_empty_index(self, codebook):
        with pytest.raises(EmptyIndexError):
            PqRerankIndex(codebook).search(np.zeros(16), 1)

    def test_custom_labels(self, codebook, corpus):
        data, _, _ = corpus
        built = PqRerankIndex(codebook)
        built.add(data[:10], labels=range(700, 710))
        labels, _ = built.search(data[3], 1)
        assert labels[0] == 703


class TestTieBreaking:
    """Duplicate-distance candidates must resolve exactly like
    ``exact_knn``'s lexicographic (distance, id) order."""

    @pytest.fixture(scope="class")
    def dup_world(self):
        rng = np.random.default_rng(5)
        base = rng.standard_normal((64, 16)).astype(np.float32)
        # Each base row repeated 4x: every exact distance ties 4-way,
        # and labels are deliberately shuffled so "first inserted wins"
        # would disagree with "smallest id wins".
        data = np.repeat(base, 4, axis=0)
        labels = rng.permutation(len(data)).astype(np.int64)
        queries = base[:8] + rng.normal(
            0, 1e-3, size=(8, 16)).astype(np.float32)
        book = PqCodebook(16, num_subspaces=4, bits=6, seed=2)
        book.train(data)
        index = PqRerankIndex(book)
        index.add(data, labels=labels.tolist())
        return data, labels, queries, index

    def test_reranked_matches_exact_knn_order(self, dup_world):
        data, labels, queries, index = dup_world
        # exact_knn works over row ids; map its answers through the
        # shuffled labels by building the corpus in label order.
        by_label = np.empty_like(data)
        by_label[labels] = data
        truth = exact_knn(by_label, queries, 12)
        for row, query in enumerate(queries):
            got, dists = index.search(query, 12, rerank=len(index))
            assert got.tolist() == truth[row].tolist()
            assert (np.diff(dists) >= 0).all()

    def test_ties_sorted_by_label_within_distance(self, dup_world):
        _, _, queries, index = dup_world
        got, dists = index.search(queries[0], 8, rerank=len(index))
        for i in range(len(got) - 1):
            if dists[i] == dists[i + 1]:
                assert got[i] < got[i + 1]

    def test_pure_adc_ties_sorted_by_label(self, dup_world):
        # Duplicate rows share PQ codes, so ADC distances tie exactly.
        _, _, queries, index = dup_world
        got, dists = index.search(queries[0], 8, rerank=0)
        for i in range(len(got) - 1):
            if dists[i] == dists[i + 1]:
                assert got[i] < got[i + 1]


class TestTrainingDeterminism:
    def test_seed_gives_byte_identical_centroids(self, corpus):
        data, _, _ = corpus
        books = []
        for _ in range(2):
            book = PqCodebook(16, num_subspaces=4, bits=6, seed=9)
            book.train(data)
            books.append(book)
        assert books[0].centroids.tobytes() == books[1].centroids.tobytes()

    def test_explicit_seed_overrides_constructor(self, corpus):
        data, _, _ = corpus
        a = PqCodebook(16, num_subspaces=4, bits=6, seed=1)
        a.train(data, seed=42)
        b = PqCodebook(16, num_subspaces=4, bits=6, seed=2)
        b.train(data, seed=42)
        assert a.centroids.tobytes() == b.centroids.tobytes()

    def test_different_seeds_differ(self, corpus):
        data, _, _ = corpus
        a = PqCodebook(16, num_subspaces=4, bits=6, seed=1)
        a.train(data)
        b = PqCodebook(16, num_subspaces=4, bits=6, seed=2)
        b.train(data)
        assert a.centroids.tobytes() != b.centroids.tobytes()

    def test_subspace_streams_independent(self, corpus):
        # Training a 4-subspace book and a 2-subspace book over the same
        # seed must give each subspace its own stream: subspace 0 of the
        # 4-way book depends only on (seed, 0), not on how many other
        # subspaces trained after it.
        data, _, _ = corpus
        wide = PqCodebook(16, num_subspaces=4, bits=6, seed=7)
        wide.train(data)
        again = PqCodebook(16, num_subspaces=4, bits=6, seed=7)
        again.train(data[:, :])
        assert wide.centroids.tobytes() == again.centroids.tobytes()
