"""Vectorized top-k candidate merging.

The serving engine accumulates (gid, distance) candidates for every query
from several cluster searches — the same gid can surface from its home
cluster's graph and again from an overflow record, and filtered queries keep
everything until finalize.  The pre-PR-4 engine merged through per-query
``dict[int, float]`` accumulators and a final ``heapq.nsmallest``; this
module replaces that with bounded NumPy buffers compacted via
``np.argpartition``, with tie-breaking deterministically equal to the dict
path: candidates are ordered by ``(distance, gid)`` ascending, duplicate
gids keep their minimum distance.  ``merge_reference`` retains the dict
implementation verbatim as the oracle the Hypothesis equivalence test (and
anyone debugging a merge discrepancy) compares against.

Distances are buffered as float64 — the dict path compared Python floats —
and cast to float32 only in the returned arrays, exactly as before.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

import numpy as np

__all__ = ["TopKMerger", "merge_reference", "select_topk"]


def select_topk(gids: np.ndarray, dists: np.ndarray,
                k: int) -> tuple[np.ndarray, np.ndarray]:
    """First ``k`` of ``(dist, gid)``-ascending order over deduplicated
    candidates, selected via ``argpartition`` instead of a full sort.

    ``argpartition`` finds the k-th smallest distance; every candidate at or
    below that threshold (all potential tie members) is kept and only that
    subset is lexsorted, so the result is identical to sorting everything.
    """
    n = gids.shape[0]
    if k < n:
        kth = np.max(dists[np.argpartition(dists, k - 1)[:k]])
        keep = dists <= kth
        gids, dists = gids[keep], dists[keep]
    order = np.lexsort((gids, dists))[:k]
    return gids[order], dists[order]


class TopKMerger:
    """Per-query bounded candidate buffers with deterministic top-k.

    Parameters
    ----------
    num_queries:
        Batch size; one buffer per query.
    k:
        Final result size; also the compaction retention bound.
    prune:
        When True (no result filter), a buffer exceeding the compaction
        threshold is collapsed to its top-k — safe because any discarded
        candidate already has ``k`` strictly better unique gids, and future
        chunks can only improve those.  Filtered searches set False and
        keep every unique gid until :meth:`top` (the filter may reject
        arbitrarily many of the better candidates).
    """

    def __init__(self, num_queries: int, k: int, prune: bool = True,
                 compact_threshold: int | None = None) -> None:
        if num_queries < 0:
            raise ValueError(f"num_queries must be >= 0, got {num_queries}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.prune = prune
        self._threshold = (compact_threshold if compact_threshold is not None
                           else max(256, 8 * k))
        if self._threshold < 1:
            raise ValueError("compact_threshold must be >= 1")
        self._gid_chunks: list[list[np.ndarray]] = [[] for _ in
                                                    range(num_queries)]
        self._dist_chunks: list[list[np.ndarray]] = [[] for _ in
                                                     range(num_queries)]
        self._counts = [0] * num_queries

    def add(self, query_index: int, gids: Iterable[int] | np.ndarray,
            dists: Iterable[float] | np.ndarray) -> None:
        """Append a chunk of candidates for one query."""
        gids = np.asarray(gids, dtype=np.int64)
        dists = np.asarray(dists, dtype=np.float64)
        if gids.shape != dists.shape:
            raise ValueError(
                f"gids/dists shape mismatch: {gids.shape} vs {dists.shape}")
        if gids.size == 0:
            return
        self._gid_chunks[query_index].append(gids)
        self._dist_chunks[query_index].append(dists)
        self._counts[query_index] += gids.size
        if self.prune and self._counts[query_index] > self._threshold:
            self._compact(query_index)

    # ------------------------------------------------------------------
    def _collapse(self, query_index: int) -> tuple[np.ndarray, np.ndarray]:
        """All buffered candidates deduplicated to min-distance per gid."""
        chunks = self._gid_chunks[query_index]
        if not chunks:
            return (np.empty(0, dtype=np.int64), np.empty(0,
                                                          dtype=np.float64))
        gids = np.concatenate(chunks)
        dists = np.concatenate(self._dist_chunks[query_index])
        # Order by (gid, dist): the first row of each gid run is its min.
        order = np.lexsort((dists, gids))
        gids, dists = gids[order], dists[order]
        first = np.empty(gids.shape[0], dtype=bool)
        first[0] = True
        np.not_equal(gids[1:], gids[:-1], out=first[1:])
        return gids[first], dists[first]

    def _store(self, query_index: int, gids: np.ndarray,
               dists: np.ndarray) -> None:
        self._gid_chunks[query_index] = [gids]
        self._dist_chunks[query_index] = [dists]
        self._counts[query_index] = gids.size

    def _compact(self, query_index: int) -> None:
        gids, dists = self._collapse(query_index)
        if gids.size > self.k:
            gids, dists = select_topk(gids, dists, self.k)
        self._store(query_index, gids, dists)

    # ------------------------------------------------------------------
    def top(self, query_index: int, k: int | None = None,
            filter_fn: Callable[[int], bool] | None = None,
            ) -> tuple[np.ndarray, np.ndarray]:
        """Final ``(ids int64, distances float32)`` for one query,
        ascending by ``(distance, gid)`` — the dict-path contract."""
        k = self.k if k is None else k
        gids, dists = self._collapse(query_index)
        self._store(query_index, gids, dists)
        if filter_fn is not None and gids.size:
            keep = np.fromiter((bool(filter_fn(int(g))) for g in gids),
                               dtype=bool, count=gids.size)
            gids, dists = gids[keep], dists[keep]
        if gids.size:
            gids, dists = select_topk(gids, dists, k)
        return gids.astype(np.int64), dists.astype(np.float32)


def merge_reference(num_queries: int,
                    chunks: Iterable[tuple[int, Iterable[int],
                                           Iterable[float]]],
                    k: int,
                    filter_fn: Callable[[int], bool] | None = None,
                    ) -> list[tuple[np.ndarray, np.ndarray]]:
    """The pre-PR-4 dict-accumulator merge, kept as a test oracle.

    ``chunks`` is a flat iterable of ``(query_index, gids, dists)``; the
    return value matches :meth:`TopKMerger.top` for every query.
    """
    merged: list[dict[int, float]] = [{} for _ in range(num_queries)]
    for query_index, gids, dists in chunks:
        accumulator = merged[query_index]
        for gid, dist in zip(gids, dists):
            gid, dist = int(gid), float(dist)
            previous = accumulator.get(gid)
            if previous is None or dist < previous:
                accumulator[gid] = dist
    results = []
    for accumulator in merged:
        candidates = [(dist, gid) for gid, dist in accumulator.items()
                      if filter_fn is None or filter_fn(gid)]
        best = heapq.nsmallest(k, candidates)
        ids = np.array([gid for _, gid in best], dtype=np.int64)
        distances = np.array([dist for dist, _ in best], dtype=np.float32)
        results.append((ids, distances))
    return results
