"""Layer traversal primitives shared by HNSW construction and querying.

Two routines from Malkov & Yashunin:

* :func:`greedy_descent` — the zoom-in phase: at each upper layer, hop to
  the closest neighbour until no improvement (``ef = 1``).
* :func:`search_layer` — the beam search (Algorithm 2): maintain ``ef``
  best candidates, expand the closest unexpanded one, vectorizing the
  per-hop distance computations.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.hnsw.distance import DistanceKernel
from repro.hnsw.graph import LayeredGraph

__all__ = ["greedy_descent", "search_layer", "knn_from_candidates"]


def greedy_descent(graph: LayeredGraph, kernel: DistanceKernel,
                   query: np.ndarray, entry: int, entry_dist: float,
                   from_level: int, to_level: int) -> tuple[int, float]:
    """Greedy walk from ``from_level`` down to (but not into) ``to_level``.

    Returns the closest node found and its distance; that node seeds the
    beam search on ``to_level``.
    """
    current, current_dist = entry, entry_dist
    for level in range(from_level, to_level, -1):
        improved = True
        while improved:
            improved = False
            neighbor_ids = graph.neighbors(current, level)
            if not neighbor_ids:
                continue
            dists = kernel.many(query, graph.vectors[neighbor_ids])
            best = int(np.argmin(dists))
            if dists[best] < current_dist:
                current = neighbor_ids[best]
                current_dist = float(dists[best])
                improved = True
    return current, current_dist


def search_layer(graph: LayeredGraph, kernel: DistanceKernel,
                 query: np.ndarray, entries: list[tuple[float, int]],
                 ef: int, level: int) -> list[tuple[float, int]]:
    """Beam search at one layer (Algorithm 2 of the HNSW paper).

    Parameters
    ----------
    entries:
        Seed ``(distance, node)`` pairs; distances must already be computed.
    ef:
        Beam width — the size of the dynamic candidate list.

    Returns
    -------
    Up to ``ef`` ``(distance, node)`` pairs, sorted ascending by distance.
    """
    if ef < 1:
        raise ValueError(f"ef must be >= 1, got {ef}")
    visited = {node for _, node in entries}
    # Min-heap of frontier candidates to expand.
    candidates = list(entries)
    heapq.heapify(candidates)
    # Max-heap (negated) of the current best ef results.
    results = [(-dist, node) for dist, node in entries]
    heapq.heapify(results)
    while len(results) > ef:
        heapq.heappop(results)

    while candidates:
        dist, node = heapq.heappop(candidates)
        worst = -results[0][0]
        if dist > worst and len(results) >= ef:
            break
        unvisited = [n for n in graph.neighbors(node, level)
                     if n not in visited]
        if not unvisited:
            continue
        visited.update(unvisited)
        dists = kernel.many(query, graph.vectors[unvisited])
        worst = -results[0][0]
        for neighbor, neighbor_dist in zip(unvisited, dists.tolist()):
            if len(results) < ef or neighbor_dist < worst:
                heapq.heappush(candidates, (neighbor_dist, neighbor))
                heapq.heappush(results, (-neighbor_dist, neighbor))
                if len(results) > ef:
                    heapq.heappop(results)
                worst = -results[0][0]
    output = [(-negated, node) for negated, node in results]
    output.sort()
    return output


def knn_from_candidates(candidates: list[tuple[float, int]],
                        k: int) -> list[tuple[float, int]]:
    """The ``k`` closest ``(distance, node)`` pairs, ascending.

    ``heapq.nsmallest`` is O(n log k) rather than the O(n log n) full
    sort, which matters when the beam is much wider than ``k`` (the
    Fig. 6 top-1 sweeps run ef up to 48 with k=1), and returns exactly
    what ``sorted(candidates)[:k]`` would.
    """
    if k <= 0:
        return []
    return heapq.nsmallest(k, candidates)
