# Convenience targets for the d-HNSW reproduction.

.PHONY: install test bench bench-smoke examples outputs clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-smoke:
	DHNSW_BENCH_SMOKE=1 pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/rag_document_retrieval.py
	python examples/streaming_ingest.py
	python examples/scheme_comparison.py
	python examples/sharded_scaleout.py

# The artefacts DESIGN.md step 6 asks for.
outputs:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
