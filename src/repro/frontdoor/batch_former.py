"""Dynamic batch formation: coalescing arrivals into waves.

The former holds admitted requests (in the DRR queues) until either
``max_batch`` requests are pending or the oldest pending request has
waited ``max_wait_us`` — the two knobs of the latency/amortization
trade-off.  A formed :class:`FormedWave` is deadline-ordered (earliest
deadline first), so downstream shedding and per-group dispatch follow
EDF, and its composition is a pure function of the queue state — no
wall-clock, no unseeded randomness — which is what makes schedules
replayable.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import FrontDoorConfig
from repro.frontdoor.admission import DeficitRoundRobin
from repro.frontdoor.request import Request

__all__ = ["BatchFormer", "FormedWave"]


@dataclasses.dataclass(frozen=True)
class FormedWave:
    """One batch of requests leaving the former, EDF-ordered."""

    wave_id: int
    #: Simulated time the wave formed (= dispatch into the engine).
    formed_us: float
    requests: tuple[Request, ...]

    @property
    def occupancy(self) -> int:
        """Requests in the wave (≤ ``max_batch``)."""
        return len(self.requests)


class BatchFormer:
    """Coalesce arriving requests into waves under a latency budget."""

    def __init__(self, config: FrontDoorConfig,
                 queues: DeficitRoundRobin) -> None:
        self.config = config
        self.queues = queues

    # -- queue state ----------------------------------------------------
    @property
    def pending(self) -> int:
        return self.queues.pending

    def offer(self, request: Request) -> None:
        """Accept an admitted request into its tenant queue."""
        self.queues.push(request)

    # -- dispatch triggers ----------------------------------------------
    def ready(self, now_us: float) -> bool:
        """True when a wave should form *now*: the batch is full, or the
        oldest pending request has exhausted the wait budget."""
        if not self.queues.pending:
            return False
        if self.queues.pending >= self.config.max_batch:
            return True
        # Same arithmetic as due_us(): the event loop advances the clock
        # to exactly `oldest + max_wait_us`, and `(oldest + w) - oldest`
        # can round below `w` — comparing against the sum (not the
        # difference) keeps ready() and due_us() consistent at the
        # boundary instead of spinning.
        due = self.due_us()
        return due is not None and due <= now_us

    def due_us(self) -> float | None:
        """Absolute time the pending wave becomes due (None when empty).

        The front door's event loop advances the clock to
        ``min(next_arrival, due_us())`` — the next instant at which a
        decision can change.
        """
        oldest = self.queues.oldest_arrival_us()
        if oldest is None:
            return None
        return oldest + self.config.max_wait_us

    # -- wave formation --------------------------------------------------
    def form(self, now_us: float, wave_id: int) -> FormedWave:
        """Form the next wave: DRR-fair selection, then EDF ordering.

        Fairness decides *which* requests board the wave; the deadline
        sort decides the order they are considered for shedding and
        grouped dispatch.  ``request_id`` breaks deadline ties so the
        order is total and replayable.
        """
        taken = self.queues.take(self.config.max_batch)
        taken.sort(key=lambda r: (r.deadline_us, r.request_id))
        return FormedWave(wave_id=wave_id, formed_us=now_us,
                          requests=tuple(taken))
