"""IVF-Flat index: training, probing, dynamic adds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import IvfFlatIndex
from repro.datasets import exact_knn
from repro.errors import ConfigError, EmptyIndexError


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(0)
    data = rng.standard_normal((1200, 12)).astype(np.float32)
    queries = rng.standard_normal((25, 12)).astype(np.float32)
    return data, queries, exact_knn(data, queries, 10)


@pytest.fixture(scope="module")
def trained(corpus):
    data, _, _ = corpus
    index = IvfFlatIndex(12, num_lists=24, seed=1)
    index.train(data)
    return index


class TestTraining:
    def test_all_vectors_listed(self, trained, corpus):
        data, _, _ = corpus
        assert len(trained) == data.shape[0]
        assert trained.list_sizes().sum() == data.shape[0]

    def test_untrained_index_rejects_ops(self):
        index = IvfFlatIndex(4, num_lists=2)
        with pytest.raises(EmptyIndexError):
            index.add(np.zeros(4), 0)
        with pytest.raises(EmptyIndexError):
            index.search(np.zeros(4), 1)

    def test_lists_clipped_to_corpus(self):
        index = IvfFlatIndex(3, num_lists=100)
        index.train(np.eye(3, dtype=np.float32))
        assert len(index.list_sizes()) == 3

    def test_custom_labels(self, corpus):
        data, _, _ = corpus
        index = IvfFlatIndex(12, num_lists=8, seed=2)
        index.train(data[:50], labels=range(1000, 1050))
        labels, _ = index.search(data[0], 1, nprobe=8)
        assert labels[0] == 1000

    def test_dim_mismatch(self):
        index = IvfFlatIndex(4, num_lists=2)
        with pytest.raises(ConfigError):
            index.train(np.zeros((10, 5), dtype=np.float32))


class TestSearch:
    def test_full_probe_is_exact(self, trained, corpus):
        data, queries, truth = corpus
        hits = 0
        for row, query in enumerate(queries):
            labels, _ = trained.search(query, 10, nprobe=24)
            hits += len(set(labels.tolist()) & set(truth[row].tolist()))
        assert hits == 250  # all lists scanned == brute force

    def test_recall_rises_with_nprobe(self, trained, corpus):
        _, queries, truth = corpus

        def recall(nprobe):
            hits = 0
            for row, query in enumerate(queries):
                labels, _ = trained.search(query, 10, nprobe=nprobe)
                hits += len(set(labels.tolist())
                            & set(truth[row].tolist()))
            return hits / 250

        assert recall(1) <= recall(4) <= recall(24)
        assert recall(24) == 1.0

    def test_distances_ascending(self, trained, corpus):
        _, queries, _ = corpus
        _, dists = trained.search(queries[0], 10, nprobe=8)
        assert np.all(np.diff(dists) >= 0)

    def test_compute_grows_with_nprobe(self, trained, corpus):
        _, queries, _ = corpus
        trained.reset_compute_counter()
        trained.search(queries[0], 10, nprobe=1)
        narrow = trained.reset_compute_counter()
        trained.search(queries[0], 10, nprobe=16)
        wide = trained.reset_compute_counter()
        assert wide > narrow

    def test_validation(self, trained):
        query = np.zeros(12, dtype=np.float32)
        with pytest.raises(ConfigError):
            trained.search(query, 0)
        with pytest.raises(ConfigError):
            trained.search(query, 1, nprobe=0)


class TestDynamicAdd:
    def test_added_vector_found(self, corpus):
        data, _, _ = corpus
        index = IvfFlatIndex(12, num_lists=16, seed=3)
        index.train(data)
        new = data[0] + 0.01
        index.add(new, label=99_999)
        labels, dists = index.search(new, 1, nprobe=4)
        assert labels[0] == 99_999
        assert dists[0] == pytest.approx(0.0, abs=1e-5)

    def test_add_goes_to_nearest_list(self, corpus):
        data, _, _ = corpus
        index = IvfFlatIndex(12, num_lists=16, seed=4)
        index.train(data)
        sizes_before = index.list_sizes().copy()
        target = index.add(data[5], label=77_777)
        sizes_after = index.list_sizes()
        assert sizes_after[target] == sizes_before[target] + 1
        assert sizes_after.sum() == sizes_before.sum() + 1
