"""Mutation path: concurrent writers, shadow rebuilds, reclamation.

This package owns every write-side protocol of the d-HNSW layout:

* :mod:`repro.mutation.writer` — :class:`MutationEngine`, the per-client
  insert/delete/batch front end.  Slot reservation uses remote FAA with
  rollback; full overflow areas trigger a shadow rebuild.
* :mod:`repro.mutation.rebuild` — :class:`ShadowRebuild`, the background
  group rebuild.  Leadership is arbitrated with a remote CAS lock word;
  the merged group is built at the region tail while readers keep
  serving the old extents, then published with one version-stamped
  cutover (seal old tail → migrate late records → bump the group's and
  the global metadata version).
* :mod:`repro.mutation.reclaim` — :class:`RetiredExtentLog`, the
  grace-period ledger.  Extents a cutover retires are reclaimed only
  after every registered reader has observed a metadata version at
  least as new as the retirement, so a reader pinned to the previous
  epoch never has bytes recycled under it.

Like :mod:`repro.serving`, this layer speaks only
:class:`repro.transport.base.Transport` verbs — never the raw queue
pair (enforced by ``tests/test_layering.py``).
"""

from repro.mutation.reclaim import RetiredExtent, RetiredExtentLog
from repro.mutation.rebuild import ShadowRebuild, writer_token
from repro.mutation.writer import InsertReport, MutationEngine, MutationStats

__all__ = [
    "InsertReport",
    "MutationEngine",
    "MutationStats",
    "RetiredExtent",
    "RetiredExtentLog",
    "ShadowRebuild",
    "writer_token",
]
