"""Merger stage: per-cluster candidates to final top-k answers.

Thin wrapper over :class:`repro.core.merge.TopKMerger`: the executor feeds
it candidates in deterministic cluster order during the waves, and this
stage finalizes the per-query heaps into :class:`QueryResult` rows
(applying the optional metadata filter) at the end of the batch.
"""

from __future__ import annotations

from typing import Callable

from repro.core.merge import TopKMerger
from repro.core.results import QueryResult
from repro.serving.trace import TraceContext, span

__all__ = ["Merger"]


class Merger:
    """Builds and finalizes the batch's top-k merger."""

    def __init__(self, host) -> None:
        self.host = host

    def create(self, num_queries: int, k: int,
               filter_fn: "Callable[[int], bool] | None") -> TopKMerger:
        """A merger for the batch; pruning is disabled under a filter so
        enough candidates survive post-filtering."""
        return TopKMerger(num_queries, k, prune=filter_fn is None)

    def finalize(self, merger: TopKMerger, num_queries: int, k: int,
                 filter_fn: "Callable[[int], bool] | None",
                 trace: TraceContext | None = None) -> list[QueryResult]:
        """Extract each query's final top-k rows."""
        with span(trace, "merge"):
            results = []
            for query_index in range(num_queries):
                ids, distances = merger.top(query_index, k, filter_fn)
                results.append(QueryResult(ids=ids, distances=distances))
        return results
