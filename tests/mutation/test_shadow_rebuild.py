"""Shadow rebuilds: step machine, sealed-tail cutover, non-blocking reads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DHnswClient, Scheme, fsck
from repro.errors import GroupSealedError
from repro.layout.group_layout import OVERFLOW_SEALED, decode_overflow_tail
from repro.mutation.rebuild import ShadowRebuild, writer_token

MUTATION_STAGES = {"classify", "reserve", "snapshot", "build", "publish"}


def fresh_client(deployment, config, scheme=Scheme.DHNSW):
    return DHnswClient(deployment.layout, deployment.meta, config,
                       scheme=scheme, cost_model=deployment.cost_model)


def fill_group(client, probe, count, base_gid=500_000):
    """Insert ``count`` near-duplicates of ``probe`` (same cluster)."""
    for i in range(count):
        client.insert(probe + i * 1e-4, base_gid + i)
    return client.metadata.clusters[client.meta.classify(probe)].group_id


class TestStepMachine:
    def test_steps_run_in_declared_order(self, mutable_deployment,
                                         small_config, small_dataset):
        client = fresh_client(mutable_deployment, small_config)
        gid = fill_group(client, small_dataset.queries[0],
                         small_config.overflow_capacity_records)
        rebuild = ShadowRebuild(client, gid)
        executed = []
        while not rebuild.done:
            executed.append(rebuild.step())
        assert executed == list(ShadowRebuild.STEPS)
        assert not rebuild.yielded

    def test_cutover_bumps_group_and_global_versions_once(
            self, mutable_deployment, small_config, small_dataset):
        client = fresh_client(mutable_deployment, small_config)
        gid = fill_group(client, small_dataset.queries[0],
                         small_config.overflow_capacity_records)
        group_before = client.metadata.groups[gid].version
        global_before = client.metadata.version
        assert ShadowRebuild(client, gid).run()
        assert client.metadata.groups[gid].version == group_before + 1
        assert client.metadata.version == global_before + 1
        # Untouched groups keep their stamps.
        others = [g.version for i, g in enumerate(client.metadata.groups)
                  if i != gid]
        assert all(version == group_before for version in others)

    def test_writer_token_is_deterministic_and_nonzero(self):
        assert writer_token("compute0") == writer_token("compute0")
        assert writer_token("compute0") != writer_token("compute1")
        assert writer_token("") != 0

    def test_lock_released_after_cutover(self, mutable_deployment,
                                         small_config, small_dataset):
        client = fresh_client(mutable_deployment, small_config)
        gid = fill_group(client, small_dataset.queries[0],
                         small_config.overflow_capacity_records)
        ShadowRebuild(client, gid).run()
        report = fsck(mutable_deployment.layout)
        assert report.clean, report.summary()
        assert not any("lock held" in finding.message
                       for finding in report.findings)

    def test_losing_the_acquire_cas_yields(self, mutable_deployment,
                                           small_config, small_dataset):
        leader = fresh_client(mutable_deployment, small_config)
        follower = fresh_client(mutable_deployment, small_config)
        gid = fill_group(leader, small_dataset.queries[0],
                         small_config.overflow_capacity_records)
        held = ShadowRebuild(leader, gid)
        assert held.step() == "acquire"  # leader now owns the lock word
        cas_before = follower.node.stats.cas_failures
        loser = ShadowRebuild(follower, gid)
        assert not loser.run()
        assert loser.yielded
        assert follower.node.stats.cas_failures == cas_before + 1
        assert held.run()  # leader finishes unharmed

    def test_rebuild_group_counts_led_and_yielded(self, mutable_deployment,
                                                  small_config,
                                                  small_dataset):
        leader = fresh_client(mutable_deployment, small_config)
        follower = fresh_client(mutable_deployment, small_config)
        gid = fill_group(leader, small_dataset.queries[0],
                         small_config.overflow_capacity_records)
        held = ShadowRebuild(leader, gid)
        held.step()
        assert follower.mutation.rebuild_group(gid) is False
        assert follower.mutation.stats.rebuilds_yielded == 1
        held.run()
        assert leader.mutation.rebuild_group(gid) is True
        assert leader.mutation.stats.rebuilds_led == 1


class TestSealedTail:
    def test_cutover_seals_old_tail_but_keeps_count_decodable(
            self, mutable_deployment, small_config, small_dataset):
        client = fresh_client(mutable_deployment, small_config)
        capacity = small_config.overflow_capacity_records
        gid = fill_group(client, small_dataset.queries[0], capacity)
        old_offset = client.metadata.groups[gid].overflow_offset
        ShadowRebuild(client, gid).run()
        node = mutable_deployment.layout.memory_node
        raw = int.from_bytes(
            node.read(mutable_deployment.layout.rkey,
                      mutable_deployment.layout.addr(old_offset), 8),
            "little")
        count, sealed = decode_overflow_tail(raw, capacity)
        assert sealed
        assert count == capacity  # retired snapshot stays decodable

    def test_stale_writer_reservation_rolls_back_and_raises(
            self, mutable_deployment, small_config, small_dataset):
        writer = fresh_client(mutable_deployment, small_config)
        stale = fresh_client(mutable_deployment, small_config)
        probe = small_dataset.queries[0]
        gid = fill_group(writer, probe,
                         small_config.overflow_capacity_records)
        stale.refresh_metadata()  # pin the pre-cutover epoch
        ShadowRebuild(writer, gid).run()
        old_offset = stale.metadata.groups[gid].overflow_offset
        cid = stale.meta.classify(probe)
        with pytest.raises(GroupSealedError):
            stale.mutation._reserve_and_write(cid, probe, 600_000)
        node = mutable_deployment.layout.memory_node
        raw = int.from_bytes(
            node.read(mutable_deployment.layout.rkey,
                      mutable_deployment.layout.addr(old_offset), 8),
            "little")
        # Fully rolled back: sealed sentinel intact, count unchanged.
        count, sealed = decode_overflow_tail(
            raw, small_config.overflow_capacity_records)
        assert sealed
        assert count == small_config.overflow_capacity_records
        assert raw >= OVERFLOW_SEALED
        # The public path refreshes onto the new epoch and succeeds.
        report = stale.insert(probe + 0.02, 600_000)
        assert stale.search(probe + 0.02, 1,
                            ef_search=32).ids[0] == 600_000
        assert report.overflow_slot >= 0

    def test_late_records_migrate_through_the_cutover(
            self, mutable_deployment, small_config, small_dataset):
        """Records reserved after the snapshot (T0) but before the seal
        (T1) land in the relocated overflow, not on the floor."""
        writer = fresh_client(mutable_deployment, small_config)
        late_writer = fresh_client(mutable_deployment, small_config)
        probe = small_dataset.queries[0]
        gid = fill_group(writer, probe, 3)
        rebuild = ShadowRebuild(writer, gid)
        while rebuild.state != "cutover":
            rebuild.step()
        # Rebuild snapshotted T0=3; a concurrent writer appends two more.
        late_writer.insert(probe + 0.01, 610_000)
        late_writer.insert(probe + 0.011, 610_001)
        rebuild.step()
        assert rebuild.done
        assert rebuild.migrated_records == 2
        reader = fresh_client(mutable_deployment, small_config)
        assert reader.search(probe + 0.01, 1, ef_search=64).ids[0] == 610_000
        report = fsck(mutable_deployment.layout)
        assert report.clean, report.summary()


class TestNonBlockingReads:
    def test_readers_serve_old_extents_during_every_step(
            self, mutable_deployment, small_config, small_dataset):
        writer = fresh_client(mutable_deployment, small_config)
        reader = fresh_client(mutable_deployment, small_config)
        probe = small_dataset.queries[0]
        gid = fill_group(writer, probe,
                         small_config.overflow_capacity_records)
        expected = reader.search(probe, 5, ef_search=48).ids.tolist()
        rebuild = ShadowRebuild(writer, gid)
        while not rebuild.done:
            step = rebuild.step()
            result = reader.search(probe, 5, ef_search=48)
            assert result.ids.tolist() == expected, f"diverged after {step}"
        assert reader.metadata.version == writer.metadata.version

    def test_reader_trace_never_contains_mutation_stages(
            self, mutable_deployment, small_config, small_dataset):
        writer = fresh_client(mutable_deployment, small_config)
        reader = fresh_client(mutable_deployment, small_config)
        probe = small_dataset.queries[0]
        gid = fill_group(writer, probe,
                         small_config.overflow_capacity_records)
        rebuild = ShadowRebuild(writer, gid)
        while not rebuild.done:
            rebuild.step()
            batch = reader.search_batch(np.atleast_2d(probe), 5,
                                        ef_search=48)
            stages = {stage.name for stage in batch.trace.report()}
            assert not stages & MUTATION_STAGES

    def test_grace_period_defers_reclaim_until_readers_catch_up(
            self, mutable_deployment, small_config, small_dataset):
        writer = fresh_client(mutable_deployment, small_config)
        reader = fresh_client(mutable_deployment, small_config)
        probe = small_dataset.queries[0]
        reader.search(probe, 1, ef_search=16)  # registers the observer
        gid = fill_group(writer, probe,
                         small_config.overflow_capacity_records)
        log = mutable_deployment.layout.retired
        ShadowRebuild(writer, gid).run()
        # Writer observed the new version at publish, but the reader is
        # still pinned one epoch back: nothing may be reclaimed yet.
        assert log.pending_bytes > 0
        assert not log.reclaimable()
        dead_before = mutable_deployment.layout.allocator.dead_bytes
        reader.search(probe, 1, ef_search=16)  # observes the new epoch
        assert log.pending_bytes == 0
        assert (mutable_deployment.layout.allocator.dead_bytes
                > dead_before)

    def test_close_deregisters_and_unblocks_reclaim(
            self, mutable_deployment, small_config, small_dataset):
        writer = fresh_client(mutable_deployment, small_config)
        straggler = fresh_client(mutable_deployment, small_config)
        probe = small_dataset.queries[0]
        straggler.search(probe, 1, ef_search=16)
        gid = fill_group(writer, probe,
                         small_config.overflow_capacity_records)
        log = mutable_deployment.layout.retired
        ShadowRebuild(writer, gid).run()
        assert log.pending_bytes > 0
        straggler.close()
        assert not [entry for entry in log.entries
                    if entry not in log.reclaimable()]
        # The next writer-side observation reclaims eagerly.
        writer.refresh_metadata()
        assert log.pending_bytes == 0


class CutoverDuringFetch:
    """Transport proxy that fires a staged rebuild's cutover inside the
    reader's first wave READ — after the plan pinned its epoch, before
    the payload lands — the worst-case interleaving for a torn read."""

    def __init__(self, inner, rebuild: ShadowRebuild) -> None:
        self._inner = inner
        self._rebuild = rebuild
        self.triggered = 0
        self.read_calls = 0

    def read_batch(self, descriptors, *args, **kwargs):
        self.read_calls += 1
        if not self.triggered and not self._rebuild.done:
            while not self._rebuild.done:
                self._rebuild.step()
            self.triggered += 1
        return self._inner.read_batch(descriptors, *args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestEpochConsistency:
    def test_cutover_mid_batch_raises_stale_and_the_engine_retries_once(
            self, mutable_deployment, small_config, small_dataset,
            monkeypatch):
        """A cutover landing between a batch's plan and its fetch must
        surface as ``StaleReadError`` (sealed old tail), and the engine's
        retry must re-pin and answer correctly — never decode the
        retired extents."""
        writer = fresh_client(mutable_deployment, small_config)
        reader = fresh_client(mutable_deployment, small_config)
        probe = small_dataset.queries[0]
        capacity = small_config.overflow_capacity_records
        gid = fill_group(writer, probe, capacity)
        inserted = {500_000 + i for i in range(capacity)}

        rebuild = ShadowRebuild(writer, gid)
        while rebuild.state != "cutover":
            rebuild.step()
        reader.transport = CutoverDuringFetch(reader.transport, rebuild)

        attempts = []
        once = reader.engine._search_batch_once

        def counting(*args, **kwargs):
            attempts.append(1)
            return once(*args, **kwargs)

        monkeypatch.setattr(reader.engine, "_search_batch_once", counting)

        vectors = np.stack([probe + i * 1e-4 for i in range(capacity)])
        batch = reader.search_batch(vectors, 1, ef_search=64)

        assert reader.transport.triggered == 1
        assert len(attempts) == 2  # first attempt torn, one retry
        assert reader.transport.read_calls >= 2  # the retry re-fetched
        assert {r.ids[0] for r in batch.results} == inserted
        assert reader.metadata.version == writer.metadata.version
        report = fsck(mutable_deployment.layout)
        assert report.clean, report.summary()
