"""d-HNSW core: the paper's contribution assembled from the substrates.

Typical usage::

    from repro.core import DHnswBuilder, DHnswClient, DHnswConfig, Scheme

    builder = DHnswBuilder(DHnswConfig(nprobe=4))
    meta, layout, report = builder.build(corpus_vectors)
    client = DHnswClient(layout, meta, builder.config, scheme=Scheme.DHNSW)
    batch = client.search_batch(queries, k=10, ef_search=32)
"""

from repro.core.baselines import Scheme, SchemePolicy, policy_for
from repro.core.cache import CachedCluster, ClusterCache
from repro.core.client import DHnswClient, InsertReport
from repro.core.config import DHnswConfig, FrontDoorConfig
from repro.core.engine import BuildReport, DHnswBuilder, RemoteLayout
from repro.core.fsck import (Finding, FsckReport, RepairReport,
                             fsck, repair_replica)
from repro.core.meta_index import MetaHnsw, sample_representatives
from repro.core.partitions import (
    Partitioning,
    assign_partitions,
    build_sub_hnsws,
)
from repro.core.query_planner import BatchPlan, Wave, plan_batch
from repro.core.results import BatchResult, QueryResult
from repro.core.tuning import TuningResult, tune_ef_search

__all__ = [
    "BatchPlan",
    "BatchResult",
    "BuildReport",
    "CachedCluster",
    "ClusterCache",
    "DHnswBuilder",
    "DHnswClient",
    "DHnswConfig",
    "Finding",
    "FrontDoorConfig",
    "FsckReport",
    "InsertReport",
    "MetaHnsw",
    "Partitioning",
    "QueryResult",
    "RemoteLayout",
    "RepairReport",
    "Scheme",
    "SchemePolicy",
    "TuningResult",
    "Wave",
    "assign_partitions",
    "build_sub_hnsws",
    "fsck",
    "repair_replica",
    "plan_batch",
    "tune_ef_search",
    "policy_for",
    "sample_representatives",
]
