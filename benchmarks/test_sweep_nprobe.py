"""nprobe sweep: recall vs traffic as more sub-HNSWs are probed.

The paper fixes ``b`` (clusters probed per query); this sweep exposes the
trade-off behind that choice and validates the partitioned index's core
premise — a handful of partitions suffices for high recall.
"""

from __future__ import annotations

from repro.core import DHnswClient, Scheme
from repro.metrics import recall_at_k

from .conftest import emit_table

NPROBES = (1, 2, 4, 8)


def test_sweep_nprobe(sift_world, benchmark):
    world = sift_world
    results = []
    for nprobe in NPROBES:
        config = world.config.replace(nprobe=nprobe)
        client = DHnswClient(world.deployment.layout,
                             world.deployment.meta, config,
                             scheme=Scheme.DHNSW,
                             cost_model=world.loaded_cost_model)
        batch = client.search_batch(world.dataset.queries, 10,
                                    ef_search=32)
        recall = recall_at_k(batch.ids_list(),
                             world.dataset.ground_truth, 10)
        results.append((nprobe, recall, batch.latency_per_query_us,
                        batch.rdma.bytes_read))

    header = (f"{'nprobe':>6} {'recall@10':>10} {'latency_us':>11} "
              f"{'bytes_read':>11}")
    rows = [f"{nprobe:>6} {recall:>10.3f} {latency:>11.2f} {bytes_:>11}"
            for nprobe, recall, latency, bytes_ in results]
    emit_table("sweep_nprobe", header, rows)

    recalls = [recall for _, recall, _, _ in results]
    latencies = [latency for _, _, latency, _ in results]
    bytes_read = [b for *_, b in results]
    # Recall grows (weakly) with probe width; so does per-query cost.
    # (Unique *bytes* saturate once a batch touches every cluster —
    # that is the dedup of §3.3 working — so bytes are only weakly
    # monotone while sub-HNSW search cost keeps growing.)
    assert all(a <= b + 1e-9 for a, b in zip(recalls, recalls[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(bytes_read, bytes_read[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(latencies, latencies[1:]))
    assert latencies[0] < latencies[2]
    # Diminishing returns: most of the recall is already there by 4.
    assert recalls[2] >= 0.9 * recalls[-1]

    client = world.client(Scheme.DHNSW)
    benchmark.pedantic(
        lambda: client.search_batch(world.dataset.queries, 10,
                                    ef_search=32),
        rounds=1, iterations=1)
    benchmark.extra_info["recall_by_nprobe"] = {
        str(nprobe): recall for nprobe, recall, _, _ in results}
