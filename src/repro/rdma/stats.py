"""Counters for simulated RDMA traffic.

:class:`RdmaStats` is the measurement substrate behind the paper's
round-trips-per-query numbers (§4, latency breakdown discussion) and the
network column of Tables 1 and 2.  Snapshots/deltas let the engine attribute
traffic to individual query batches.
"""

from __future__ import annotations

import dataclasses

__all__ = ["RdmaStats"]


@dataclasses.dataclass
class RdmaStats:
    """Mutable RDMA traffic counters.

    ``round_trips`` counts *network* round trips: a doorbell batch of many
    READs over one ring counts once, which is exactly the accounting that
    makes d-HNSW's 4.75e-3 round-trips/query figure meaningful.
    """

    round_trips: int = 0
    read_ops: int = 0
    write_ops: int = 0
    atomic_ops: int = 0
    doorbell_batches: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    network_time_us: float = 0.0
    #: Portion of read wire time that completed under overlapped compute —
    #: issued via ``post_read_batch_async`` and already finished when the
    #: caller polled.  ``network_time_us`` holds only the *exposed* wait, so
    #: exposed + overlapped equals the serial wire time.
    overlapped_time_us: float = 0.0
    #: Verb re-issues performed by a retrying transport after a fault.
    retries: int = 0
    #: Simulated time spent backing off between retry attempts (charged to
    #: the owning clock; *not* included in ``network_time_us``).
    backoff_time_us: float = 0.0
    #: Faults a ``FaultInjectingTransport`` injected (simulation-only).
    faults_injected: int = 0
    #: READs re-routed to another replica after one replica exhausted its
    #: retry budget (see ``repro.transport.replica``).
    failovers: int = 0
    #: CAS verbs that lost their race (prior value != expected).  The
    #: writer-contention signal of the mutation path: every lost rebuild
    #: leadership or cutover race shows up here.
    cas_failures: int = 0

    def record_read(self, nbytes: int, time_us: float) -> None:
        """Account one single READ."""
        self.round_trips += 1
        self.read_ops += 1
        self.bytes_read += nbytes
        self.network_time_us += time_us

    def record_write(self, nbytes: int, time_us: float) -> None:
        """Account one single WRITE."""
        self.round_trips += 1
        self.write_ops += 1
        self.bytes_written += nbytes
        self.network_time_us += time_us

    def record_atomic(self, time_us: float) -> None:
        """Account one CAS/FAA."""
        self.round_trips += 1
        self.atomic_ops += 1
        self.network_time_us += time_us

    def record_cas_failure(self) -> None:
        """Account one CAS that observed a different prior value.

        The verb itself is already counted by :meth:`record_atomic`;
        this only tallies the lost race (writer contention).
        """
        self.cas_failures += 1

    def record_doorbell_read(self, sizes: list[int], rings: int,
                             time_us: float) -> None:
        """Account one doorbell-batched READ covering several WQEs."""
        self.round_trips += rings
        self.read_ops += len(sizes)
        self.doorbell_batches += 1
        self.bytes_read += sum(sizes)
        self.network_time_us += time_us

    def record_async_read(self, sizes: list[int], rings: int,
                          waited_us: float, hidden_us: float,
                          doorbell: bool = True) -> None:
        """Account one asynchronously issued READ batch at poll time.

        ``waited_us`` is the exposed wait charged to the caller's timeline;
        ``hidden_us`` is the remainder of the wire time that overlapped with
        compute between issue and poll.
        """
        self.round_trips += rings
        self.read_ops += len(sizes)
        if doorbell:
            self.doorbell_batches += 1
        self.bytes_read += sum(sizes)
        self.network_time_us += waited_us
        self.overlapped_time_us += hidden_us

    def record_doorbell_write(self, sizes: list[int], rings: int,
                              time_us: float) -> None:
        """Account one doorbell-batched WRITE covering several WQEs."""
        self.round_trips += rings
        self.write_ops += len(sizes)
        self.doorbell_batches += 1
        self.bytes_written += sum(sizes)
        self.network_time_us += time_us

    def record_retry(self, backoff_us: float) -> None:
        """Account one verb re-issue and the backoff that preceded it."""
        self.retries += 1
        self.backoff_time_us += backoff_us

    def record_fault(self, wasted_us: float = 0.0) -> None:
        """Account one injected transport fault.

        ``wasted_us`` is the wire/wait time the failed attempt burned
        (e.g. an armed timeout, or the partial transfer of a torn READ);
        it is exposed wait, so it lands in ``network_time_us``.
        """
        self.faults_injected += 1
        self.network_time_us += wasted_us

    def record_failover(self) -> None:
        """Account one READ failed over to a different replica."""
        self.failovers += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> "RdmaStats":
        """A frozen copy of the current counters."""
        return dataclasses.replace(self)

    def delta(self, earlier: "RdmaStats") -> "RdmaStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return RdmaStats(
            round_trips=self.round_trips - earlier.round_trips,
            read_ops=self.read_ops - earlier.read_ops,
            write_ops=self.write_ops - earlier.write_ops,
            atomic_ops=self.atomic_ops - earlier.atomic_ops,
            doorbell_batches=self.doorbell_batches - earlier.doorbell_batches,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            network_time_us=self.network_time_us - earlier.network_time_us,
            overlapped_time_us=(self.overlapped_time_us
                                - earlier.overlapped_time_us),
            retries=self.retries - earlier.retries,
            backoff_time_us=self.backoff_time_us - earlier.backoff_time_us,
            faults_injected=self.faults_injected - earlier.faults_injected,
            failovers=self.failovers - earlier.failovers,
            cas_failures=self.cas_failures - earlier.cas_failures,
        )

    def merge(self, other: "RdmaStats") -> None:
        """Add ``other``'s counters into this one (cluster aggregation)."""
        self.round_trips += other.round_trips
        self.read_ops += other.read_ops
        self.write_ops += other.write_ops
        self.atomic_ops += other.atomic_ops
        self.doorbell_batches += other.doorbell_batches
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.network_time_us += other.network_time_us
        self.overlapped_time_us += other.overlapped_time_us
        self.retries += other.retries
        self.backoff_time_us += other.backoff_time_us
        self.faults_injected += other.faults_injected
        self.failovers += other.failovers
        self.cas_failures += other.cas_failures
