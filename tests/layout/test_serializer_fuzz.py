"""Fuzzing the serializers: corrupted bytes must fail *cleanly*.

A compute instance deserializes whatever the remote READ returns; if a
concurrent writer or a bug hands it garbage, the only acceptable
outcomes are a successful parse (of a still-valid prefix) or a
:class:`SerializationError`/:class:`LayoutError` — never an unhandled
IndexError/struct.error/segfault-equivalent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError, SerializationError
from repro.hnsw import HnswIndex, HnswParams
from repro.layout.metadata import ClusterEntry, GlobalMetadata, GroupEntry
from repro.layout.serializer import deserialize_cluster, serialize_cluster

ACCEPTABLE = (SerializationError, LayoutError)


@pytest.fixture(scope="module")
def blob() -> bytes:
    index = HnswIndex(8, HnswParams(m=6, ef_construction=24, seed=0))
    index.add(np.random.default_rng(0).standard_normal(
        (60, 8)).astype(np.float32))
    return serialize_cluster(index, 3)


@pytest.fixture(scope="module")
def metadata_blob() -> bytes:
    metadata = GlobalMetadata(
        version=2, dim=8, overflow_capacity_records=4,
        clusters=[ClusterEntry(100, 50, 0), ClusterEntry(200, 60, 0)],
        groups=[GroupEntry(160, 4)])
    return metadata.pack()


class TestClusterBlobFuzz:
    @settings(max_examples=120, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=10_000))
    def test_truncation_never_crashes(self, blob, cut):
        truncated = blob[:min(cut, len(blob))]
        try:
            index, _ = deserialize_cluster(truncated)
            index.graph.check_invariants()
        except ACCEPTABLE:
            pass

    @settings(max_examples=120, deadline=None)
    @given(position=st.integers(min_value=0, max_value=10_000),
           value=st.integers(min_value=0, max_value=255))
    def test_byte_corruption_never_crashes(self, blob, position, value):
        corrupted = bytearray(blob)
        corrupted[position % len(corrupted)] = value
        try:
            deserialize_cluster(bytes(corrupted))
        except ACCEPTABLE:
            pass
        except AssertionError:
            # Invariant checks are not run by deserialize; a flipped
            # byte may produce a structurally odd but parseable graph.
            pytest.fail("deserialize_cluster raised AssertionError")

    @settings(max_examples=60, deadline=None)
    @given(junk=st.binary(min_size=0, max_size=200))
    def test_random_bytes_never_crash(self, junk):
        try:
            deserialize_cluster(junk)
        except ACCEPTABLE:
            pass


class TestMetadataFuzz:
    @settings(max_examples=120, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=500))
    def test_truncation_never_crashes(self, metadata_blob, cut):
        try:
            GlobalMetadata.unpack(metadata_blob[:min(cut,
                                                     len(metadata_blob))])
        except ACCEPTABLE:
            pass

    @settings(max_examples=120, deadline=None)
    @given(position=st.integers(min_value=0, max_value=500),
           value=st.integers(min_value=0, max_value=255))
    def test_byte_corruption_never_crashes(self, metadata_blob, position,
                                           value):
        corrupted = bytearray(metadata_blob)
        corrupted[position % len(corrupted)] = value
        try:
            GlobalMetadata.unpack(bytes(corrupted))
        except ACCEPTABLE:
            pass

    @settings(max_examples=60, deadline=None)
    @given(junk=st.binary(min_size=0, max_size=100))
    def test_random_bytes_never_crash(self, junk):
        try:
            GlobalMetadata.unpack(junk)
        except ACCEPTABLE:
            pass
