"""Telemetry snapshots and the operator report."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    CacheTelemetry,
    ClientTelemetry,
    DeploymentTelemetry,
    _maxrss_to_bytes,
    peak_rss_bytes,
    render_report,
)


@pytest.fixture(scope="module")
def snapshot(built_deployment, small_dataset):
    client = built_deployment.client(0)
    client.search_batch(small_dataset.queries, 5, ef_search=16)
    client.search_batch(small_dataset.queries, 5, ef_search=16)
    return DeploymentTelemetry.from_deployment(built_deployment)


class TestClientTelemetry:
    def test_counters_populated(self, snapshot):
        client = snapshot.clients[0]
        assert client.round_trips > 0
        assert client.bytes_read > 0
        assert client.network_time_us > 0
        assert client.compute_time_us > 0
        assert client.metadata_version >= 1

    def test_cache_counters(self, snapshot):
        cache = snapshot.clients[0].cache
        assert cache.capacity_clusters >= 1
        assert cache.resident_clusters <= cache.capacity_clusters
        assert cache.hits + cache.misses > 0
        assert 0.0 <= cache.hit_rate <= 1.0

    def test_dram_within_budget(self, snapshot):
        client = snapshot.clients[0]
        assert 0 < client.dram_used_bytes <= client.dram_budget_bytes

    def test_control_path_counted(self, snapshot):
        assert snapshot.clients[0].control_requests >= 1


class TestDeploymentTelemetry:
    def test_memory_pool_numbers(self, snapshot):
        assert snapshot.registered_bytes >= snapshot.region_capacity_bytes
        assert snapshot.allocator_live_bytes > 0
        assert snapshot.num_clusters == 12
        assert snapshot.num_groups == 6

    def test_daemon_counted(self, snapshot):
        assert snapshot.daemon_requests >= 1
        assert snapshot.daemon_cpu_us > 0

    def test_aggregates(self, snapshot):
        assert snapshot.total_round_trips == sum(
            client.round_trips for client in snapshot.clients)
        assert snapshot.total_bytes_read == sum(
            client.bytes_read for client in snapshot.clients)


class TestRenderReport:
    def test_report_sections(self, snapshot):
        report = render_report(snapshot)
        assert "=== memory pool ===" in report
        assert "=== compute pool ===" in report
        assert "metadata v1" in report

    def test_report_lists_every_instance(self, snapshot):
        report = render_report(snapshot)
        for client in snapshot.clients:
            assert client.name in report


class TestRenderReportFrontDoorSection:
    """The report grows a front-door section when handed a LoadReport.

    End-to-end coverage (real FrontDoor runs) lives in
    ``tests/frontdoor/test_door.py``; here we pin the rendering itself —
    column presence and honest counts — on a real (tiny) run.
    """

    @pytest.fixture(scope="class")
    def frontdoor_report(self, built_deployment, small_dataset):
        import numpy as np

        from repro.frontdoor import (FrontDoor, FrontDoorConfig,
                                     make_requests, poisson_arrivals)

        client = built_deployment.make_client(
            built_deployment.client().scheme, name="telemetry-door")
        rng = np.random.default_rng(13)
        requests = make_requests(
            poisson_arrivals(3000.0, 24, rng), small_dataset.queries,
            k=5, slo_us=50_000.0, rng=rng, tenants=("gold", "bronze"),
            ef_search=16)
        door = FrontDoor(client,
                         FrontDoorConfig(max_wait_us=1000.0, max_batch=8))
        return door.run(requests)

    def test_section_and_columns(self, snapshot, frontdoor_report):
        report = render_report(snapshot, frontdoor=frontdoor_report)
        assert "=== front door ===" in report
        assert "queue delay" in report
        assert "e2e latency" in report
        assert "shed@admission" in report
        for column in ("tenant", "offered", "served", "degraded",
                       "q_p99us", "share"):
            assert column in report

    def test_counts_match_the_load_report(self, snapshot, frontdoor_report):
        report = render_report(snapshot, frontdoor=frontdoor_report)
        assert f"{frontdoor_report.offered} offered" in report
        assert f"{frontdoor_report.served} served" in report
        assert "gold" in report and "bronze" in report

    def test_omitting_frontdoor_keeps_the_report_unchanged(self, snapshot):
        assert "front door" not in render_report(snapshot)


class TestHitRateEdgeCases:
    def test_zero_lookups(self):
        cache = CacheTelemetry(capacity_clusters=1, resident_clusters=0,
                               cached_bytes=0, hits=0, misses=0,
                               evictions=0, invalidations=0)
        assert cache.hit_rate == 0.0

    def test_from_client_no_control(self, built_deployment):
        client = built_deployment.client(0)
        saved_control = client.control
        client.control = None
        try:
            telemetry = ClientTelemetry.from_client(client)
            assert telemetry.control_requests == 0
        finally:
            client.control = saved_control


class TestPeakRssUnits:
    """``ru_maxrss`` is KB on Linux/BSD but bytes on macOS (satellite of
    the fault-path PR: the scale benchmark's RSS gate read 1024x high on
    macOS before the normalization split)."""

    def test_linux_reports_kilobytes(self):
        assert _maxrss_to_bytes(2048, platform="linux") == 2048 * 1024

    def test_macos_reports_bytes(self):
        assert _maxrss_to_bytes(2048, platform="darwin") == 2048

    def test_bsd_falls_into_the_kilobyte_default(self):
        assert _maxrss_to_bytes(100, platform="freebsd14") == 100 * 1024

    def test_current_platform_is_positive_and_plausible(self):
        rss = peak_rss_bytes()
        # A python process with numpy loaded needs well over 4 MiB; a
        # unit mix-up (bytes treated as KB or vice versa) lands far
        # outside this window.
        assert 4 * 2**20 < rss < 1 * 2**40
