"""SLO-aware dispatch: deadline ordering, shedding, and ef degradation.

The scheduler turns a formed wave into dispatch instructions:

* requests whose deadline already passed when the wave formed are shed
  (``shed_late``) — answering them cannot meet the SLO, and the engine
  time is better spent on requests that still can;
* under overload (post-wave backlog beyond ``degrade_backlog_waves``
  full waves) the whole wave dispatches with the calibrated
  ``degraded_ef`` beam width instead of each request's own — recall is
  traded for drain rate, and every affected request is marked
  :attr:`~repro.frontdoor.request.RequestStatus.DEGRADED` so the
  downgrade is never silent;
* survivors are grouped by ``(k, ef)`` — one engine call per group, in
  earliest-deadline order — so a heterogeneous wave still amortizes the
  doorbell.

``resolve_ef`` is the serving engine's own resolution rule (explicit →
config default → the paper's ``2k``), reused so the front door and a
direct ``search_batch`` call agree on beam widths — the bit-identity
contract depends on it.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.core.config import FrontDoorConfig
from repro.core.tuning import tune_ef_search
from repro.frontdoor.batch_former import FormedWave
from repro.frontdoor.request import Request

__all__ = ["DispatchGroup", "DispatchPlan", "SloScheduler",
           "calibrate_degraded_ef"]


@dataclasses.dataclass(frozen=True)
class DispatchGroup:
    """Requests sharing one engine call: same ``k``, same ``ef``."""

    k: int
    ef: int
    requests: tuple[Request, ...]


@dataclasses.dataclass(frozen=True)
class DispatchPlan:
    """The scheduler's verdict on one wave."""

    groups: tuple[DispatchGroup, ...]
    shed: tuple[Request, ...]
    degraded: bool

    @property
    def dispatched(self) -> int:
        return sum(len(group.requests) for group in self.groups)


class SloScheduler:
    """Deadline-ordered, overload-aware dispatch policy."""

    def __init__(self, config: FrontDoorConfig,
                 resolve_ef: Callable[[int, int | None], int]) -> None:
        self.config = config
        self._resolve_ef = resolve_ef

    def overloaded(self, backlog: int) -> bool:
        """Is the queue deep enough to justify degrading recall?"""
        if self.config.degraded_ef is None:
            return False
        threshold = self.config.degrade_backlog_waves * self.config.max_batch
        return backlog > threshold

    def plan(self, wave: FormedWave, backlog: int) -> DispatchPlan:
        """Decide shedding, beam widths, and engine-call grouping.

        ``backlog`` is the number of requests still queued *after* this
        wave boarded — the pressure signal for degradation.  The wave's
        requests arrive EDF-ordered and group order preserves that, so
        the earliest deadline group reaches the engine first.
        """
        shed: list[Request] = []
        live: list[Request] = []
        for request in wave.requests:
            if self.config.shed_late and wave.formed_us > request.deadline_us:
                shed.append(request)
            else:
                live.append(request)

        degraded = bool(live) and self.overloaded(backlog)
        groups: dict[tuple[int, int], list[Request]] = {}
        for request in live:
            ef = self._resolve_ef(request.k, request.ef_search)
            if degraded:
                # Never degrade below k (the engine's floor) and never
                # *raise* a request's beam in the name of degradation.
                ef = min(ef, max(self.config.degraded_ef, request.k))
            groups.setdefault((request.k, ef), []).append(request)
        return DispatchPlan(
            groups=tuple(DispatchGroup(k=k, ef=ef, requests=tuple(members))
                         for (k, ef), members in groups.items()),
            shed=tuple(shed), degraded=degraded)


def calibrate_degraded_ef(client, queries: np.ndarray,
                          ground_truth: np.ndarray, k: int,
                          relaxed_recall: float,
                          ef_max: int = 128) -> int:
    """Pick the overload beam width against a *relaxed* recall target.

    A thin wrapper over :func:`repro.core.tuning.tune_ef_search`: the
    degraded mode should still honour some floor (say recall ≥ 0.8 when
    the normal SLO is 0.95), so the knob is calibrated the same way the
    normal operating point is — binary search on a validation set —
    rather than guessed.  Returns the smallest ``ef_search`` meeting
    ``relaxed_recall`` (or ``ef_max`` if nothing does — the caller keeps
    whatever recall that buys).
    """
    result = tune_ef_search(client, queries, ground_truth, k,
                            target_recall=relaxed_recall, ef_max=ef_max)
    return result.ef_search
