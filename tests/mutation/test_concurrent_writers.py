"""Multi-writer ingest: slot uniqueness, batch splitting, supersession,
and interleaving-determinism of the final live-record set."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Deployment
from repro.core import DHnswClient, DHnswConfig, Scheme, fsck
from repro.datasets.synthetic import make_clustered


def fresh_client(deployment, config, scheme=Scheme.DHNSW):
    return DHnswClient(deployment.layout, deployment.meta, config,
                       scheme=scheme, cost_model=deployment.cost_model)


class TestConcurrentSlotReservation:
    def test_interleaved_writers_never_share_a_slot(
            self, mutable_deployment, small_config, small_dataset):
        writers = [fresh_client(mutable_deployment, small_config)
                   for _ in range(3)]
        probe = small_dataset.queries[0]
        reports = []
        for i in range(6):
            writer = writers[i % len(writers)]
            reports.append(writer.insert(probe + i * 1e-4, 700_000 + i))
        slots = [(r.cluster_id, r.overflow_slot) for r in reports]
        assert len(set(slots)) == len(slots)
        report = fsck(mutable_deployment.layout)
        assert report.clean, report.summary()

    def test_every_writer_sees_every_record_after_rebuild(
            self, mutable_deployment, small_config, small_dataset):
        writers = [fresh_client(mutable_deployment, small_config)
                   for _ in range(2)]
        probe = small_dataset.queries[1]
        total = small_config.overflow_capacity_records + 4
        inserted = []
        for i in range(total):
            writers[i % 2].insert(probe + i * 1e-4, 710_000 + i)
            inserted.append(710_000 + i)
        for writer in writers:
            batch = writer.search_batch(
                np.stack([probe + i * 1e-4 for i in range(total)]),
                1, ef_search=64)
            assert {r.ids[0] for r in batch.results} == set(inserted)


class TestBatchSplitting:
    def test_batch_larger_than_overflow_capacity_splits(
            self, mutable_deployment, small_config, small_dataset):
        """Regression: an ``insert_batch`` bigger than an empty group's
        whole overflow capacity must split across reservations and
        rebuilds instead of raising ``OverflowFullError``."""
        client = fresh_client(mutable_deployment, small_config)
        probe = small_dataset.queries[0]
        capacity = small_config.overflow_capacity_records
        count = 2 * capacity + 3  # > capacity even after one rebuild
        vectors = np.stack([probe + i * 1e-4 for i in range(count)])
        ids = [720_000 + i for i in range(count)]
        reports = client.insert_batch(vectors, ids)
        assert [r.global_id for r in reports] == ids
        assert client.mutation.stats.rebuilds_led >= 2
        assert client.mutation.stats.batch_chunks >= 2
        batch = client.search_batch(vectors, 1, ef_search=64)
        assert {r.ids[0] for r in batch.results} == set(ids)
        report = fsck(mutable_deployment.layout)
        assert report.clean, report.summary()

    def test_split_batch_matches_single_inserts(self, small_dataset,
                                                small_config):
        """The split path lands the same live-record set as one-at-a-time
        inserts of the same rows."""
        probe = small_dataset.queries[2]
        capacity = small_config.overflow_capacity_records
        count = capacity + 5
        vectors = np.stack([probe + i * 1e-4 for i in range(count)])
        ids = [730_000 + i for i in range(count)]

        batched = Deployment(small_dataset.vectors, small_config)
        client_a = fresh_client(batched, small_config)
        client_a.insert_batch(vectors, ids)

        serial = Deployment(small_dataset.vectors, small_config)
        client_b = fresh_client(serial, small_config)
        for vector, gid in zip(vectors, ids):
            client_b.insert(vector, gid)

        result_a = client_a.search_batch(vectors, 1, ef_search=64)
        result_b = client_b.search_batch(vectors, 1, ef_search=64)
        assert ([r.ids[0] for r in result_a.results]
                == [r.ids[0] for r in result_b.results])


class TestSupersession:
    def test_delete_then_reinsert_survives_rebuild_with_new_vector(
            self, mutable_deployment, small_config, small_dataset):
        """Tombstone a global id, re-insert it with a different vector,
        force the group rebuild: exactly the new vector survives."""
        client = fresh_client(mutable_deployment, small_config)
        probe = small_dataset.queries[0]
        old_vector = probe + 0.02
        new_vector = probe + 0.04
        client.insert(old_vector, 740_000)
        client.delete(old_vector, 740_000)
        client.insert(new_vector, 740_000)
        # Fill the remaining slots to force the rebuild + relocation.
        while True:
            report = client.insert(probe + np.random.default_rng(
                client.mutation.stats.inserts).normal(0, 1e-4, probe.shape)
                .astype(np.float32), 741_000 + client.mutation.stats.inserts)
            if report.triggered_rebuild:
                break
        hit = client.search(new_vector, 1, ef_search=64)
        assert hit.ids[0] == 740_000
        assert hit.distances[0] == pytest.approx(0.0, abs=1e-5)
        # The superseded vector is gone: searching for it finds 740_000
        # only at the *new* location's distance, not at zero.
        old_hit = client.search(old_vector, 1, ef_search=64)
        if old_hit.ids[0] == 740_000:
            assert old_hit.distances[0] > 1e-5
        # Exactly one copy of the id remains anywhere in the layout.
        report = fsck(mutable_deployment.layout)
        assert report.clean, report.summary()


# -- interleaving determinism (hypothesis) ------------------------------

def tiny_deployment() -> tuple[Deployment, DHnswConfig, np.ndarray]:
    """A minimal deployment cheap enough to rebuild per example."""
    rng = np.random.default_rng(11)
    corpus = make_clustered(160, 8, num_clusters=4, cluster_std=0.05,
                            rng=rng)
    config = DHnswConfig(num_representatives=4, nprobe=2, ef_meta=8,
                         cache_fraction=0.3, batch_size=16,
                         overflow_capacity_records=4, seed=11,
                         build_workers=1, search_workers=1)
    return Deployment(corpus, config), config, corpus


def writer_program(writer_index: int, corpus: np.ndarray
                   ) -> list[tuple[str, int, np.ndarray]]:
    """A fixed per-writer op sequence over a private global-id range.

    Writers never touch each other's ids, so the final live set is a
    pure function of each writer's program order — which any
    interleaving preserves.
    """
    base = 800_000 + 1_000 * writer_index
    anchor = corpus[writer_index * 3]

    def vec(i: int) -> np.ndarray:
        # Offset from the anchor so no program vector ties a corpus
        # vector at distance zero (liveness is probed by exact match).
        return (anchor + (i + 1) * 2e-3).astype(np.float32)

    ops = [("insert", base + i, vec(i)) for i in range(6)]
    ops.append(("delete", base + 1, vec(1)))
    ops.append(("delete", base + 4, vec(4)))
    ops.append(("insert", base + 1, (anchor + 0.02).astype(np.float32)))
    return ops


def expected_live_ids(programs: list[list[tuple]]) -> set[int]:
    live: set[int] = set()
    for program in programs:
        for op, gid, _vector in program:
            if op == "insert":
                live.add(gid)
            else:
                live.discard(gid)
    return live


@settings(max_examples=6, deadline=None)
@given(interleaving=st.lists(st.integers(min_value=0, max_value=1),
                             min_size=0, max_size=30))
def test_any_interleaving_yields_the_same_live_set(interleaving):
    """Concurrent-writer determinism: every op-granularity interleaving
    of the seeded two-writer schedule lands the same final live-record
    set and fsck-clean metadata."""
    deployment, config, corpus = tiny_deployment()
    writers = [fresh_client(deployment, config) for _ in range(2)]
    programs = [writer_program(i, corpus) for i in range(2)]
    cursors = [0, 0]
    schedule = list(interleaving)
    while any(cursor < len(program)
              for cursor, program in zip(cursors, programs)):
        choice = schedule.pop(0) if schedule else 0
        if cursors[choice] >= len(programs[choice]):
            choice = 1 - choice
        op, gid, vector = programs[choice][cursors[choice]]
        if op == "insert":
            writers[choice].insert(vector, gid)
        else:
            writers[choice].delete(vector, gid)
        cursors[choice] += 1

    report = fsck(deployment.layout)
    assert report.clean, report.summary()

    expected = expected_live_ids(programs)
    reader = fresh_client(deployment, config)
    found = set()
    for program in programs:
        for _, gid, vector in program:
            hit = reader.search(vector, 1, ef_search=64)
            if hit.distances[0] < 1e-6:
                found.add(int(hit.ids[0]))
    assert found == expected
    for writer in writers:
        writer.close()
    reader.close()
