"""Construction-time and query-time parameters for HNSW.

Names follow Malkov & Yashunin (TPAMI 2018) and the hnswlib conventions the
paper's prototype inherits:

* ``m`` — max out-degree per node on layers >= 1 (the paper's "M").
* ``m0`` — max out-degree on layer 0, conventionally ``2 * m``.
* ``ef_construction`` — beam width while inserting.
* ``ef_search`` — beam width while querying (the paper sweeps 1..48).
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigError
from repro.hnsw.distance import Metric

__all__ = ["HnswParams"]


@dataclasses.dataclass(frozen=True)
class HnswParams:
    """Immutable HNSW hyper-parameters.

    ``level_mult`` defaults to ``1 / ln(m)`` as in the original paper, which
    makes layer populations shrink geometrically by a factor of ``m``.
    ``max_level`` caps the hierarchy height; the meta-HNSW of d-HNSW sets it
    to 2 (three layers: L0, L1, L2).
    """

    m: int = 16
    m0: int | None = None
    ef_construction: int = 200
    metric: Metric = Metric.L2
    level_mult: float | None = None
    max_level: int | None = None
    seed: int = 0
    extend_candidates: bool = False
    keep_pruned_connections: bool = True

    def __post_init__(self) -> None:
        if self.m < 2:
            raise ConfigError(f"m must be >= 2, got {self.m}")
        if self.ef_construction < 1:
            raise ConfigError(
                f"ef_construction must be >= 1, got {self.ef_construction}")
        if self.m0 is not None and self.m0 < self.m:
            raise ConfigError(
                f"m0 ({self.m0}) must be >= m ({self.m})")
        if self.max_level is not None and self.max_level < 0:
            raise ConfigError(
                f"max_level must be >= 0, got {self.max_level}")
        if self.level_mult is not None and self.level_mult <= 0:
            raise ConfigError(
                f"level_mult must be positive, got {self.level_mult}")

    @property
    def effective_m0(self) -> int:
        """Layer-0 degree bound (defaults to ``2 * m``)."""
        return self.m0 if self.m0 is not None else 2 * self.m

    @property
    def effective_level_mult(self) -> float:
        """Level-sampling multiplier (defaults to ``1 / ln(m)``)."""
        if self.level_mult is not None:
            return self.level_mult
        return 1.0 / math.log(self.m)

    def max_degree(self, level: int) -> int:
        """Degree bound for a given layer."""
        return self.effective_m0 if level == 0 else self.m

    def replace(self, **changes: object) -> "HnswParams":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)
