"""Measurement utilities: recall, latency breakdowns, terminal plots."""

from repro.metrics.ascii_plot import ascii_plot
from repro.metrics.latency import LatencyBreakdown
from repro.metrics.recall import per_query_recall, recall_at_k

__all__ = ["LatencyBreakdown", "ascii_plot", "per_query_recall",
           "recall_at_k"]
