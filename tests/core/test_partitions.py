"""Partition assignment and sub-HNSW construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.meta_index import MetaHnsw
from repro.core.partitions import assign_partitions, build_sub_hnsws
from repro.hnsw.distance import pairwise_l2
from repro.hnsw.params import HnswParams

META_PARAMS = HnswParams(m=8, ef_construction=32, max_level=2, seed=0)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(11)
    vectors = rng.uniform(0, 1, size=(600, 8)).astype(np.float32)
    representatives = vectors[rng.choice(600, 20, replace=False)]
    meta = MetaHnsw(representatives, META_PARAMS)
    partitioning = assign_partitions(vectors, meta)
    return vectors, meta, partitioning


class TestAssignment:
    def test_every_vector_assigned_once(self, setup):
        vectors, meta, partitioning = setup
        assert partitioning.assignments.shape == (600,)
        assert partitioning.sizes().sum() == 600

    def test_assignment_is_exact_nearest_representative(self, setup):
        vectors, meta, partitioning = setup
        reps = meta.index.graph.vectors
        expected = np.argmin(pairwise_l2(vectors, reps), axis=1)
        np.testing.assert_array_equal(partitioning.assignments, expected)

    def test_members_consistent_with_assignments(self, setup):
        _, _, partitioning = setup
        for partition, members in enumerate(partitioning.members):
            for gid in members:
                assert partitioning.assignments[gid] == partition

    def test_chunked_assignment_identical(self, setup):
        vectors, meta, partitioning = setup
        rechunked = assign_partitions(vectors, meta, chunk_size=7)
        np.testing.assert_array_equal(rechunked.assignments,
                                      partitioning.assignments)


class TestSubHnswConstruction:
    def test_one_index_per_partition(self, setup):
        vectors, _, partitioning = setup
        indexes = build_sub_hnsws(vectors, partitioning,
                                  HnswParams(m=6, ef_construction=20))
        assert len(indexes) == partitioning.num_partitions
        for index, members in zip(indexes, partitioning.members):
            assert len(index) == len(members)

    def test_labels_are_global_ids(self, setup):
        vectors, _, partitioning = setup
        indexes = build_sub_hnsws(vectors, partitioning,
                                  HnswParams(m=6, ef_construction=20))
        for index, members in zip(indexes, partitioning.members):
            assert index.labels == [int(x) for x in members]

    def test_sub_search_returns_global_ids(self, setup):
        vectors, _, partitioning = setup
        indexes = build_sub_hnsws(vectors, partitioning,
                                  HnswParams(m=6, ef_construction=20))
        populated = max(range(len(indexes)), key=lambda i: len(indexes[i]))
        member = partitioning.members[populated][0]
        labels, dists = indexes[populated].search(vectors[member], 1, ef=16)
        assert labels[0] == member
        assert dists[0] == pytest.approx(0.0, abs=1e-6)

    def test_empty_partition_yields_empty_index(self):
        rng = np.random.default_rng(0)
        # Two far-apart reps; all data near the first.
        reps = np.array([[0.0] * 4, [100.0] * 4], dtype=np.float32)
        meta = MetaHnsw(reps, META_PARAMS)
        vectors = rng.normal(0, 0.1, size=(50, 4)).astype(np.float32)
        partitioning = assign_partitions(vectors, meta)
        indexes = build_sub_hnsws(vectors, partitioning,
                                  HnswParams(m=4))
        assert len(indexes[0]) == 50
        assert len(indexes[1]) == 0
