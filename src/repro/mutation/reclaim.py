"""Grace-period reclamation of extents retired by shadow rebuilds.

A cutover relocates a group and retires its old extents, but a reader
pinned to the previous metadata epoch may still hold offsets into them
(the sealed overflow area remains a consistent, decodable snapshot).
Retired space therefore flows through a :class:`RetiredExtentLog`
instead of straight back to the allocator: each entry remembers the
metadata version whose publication retired it, and is recycled only
once every *registered observer* has caught up to that version.

Observers are compute clients.  Registration is lazy — a client joins
the table the first time it refreshes metadata (and reports every later
refresh), so an idle client that never touches the data path holds no
pin and cannot block reclamation.  The rebuilder itself observes the
new version at publish time, which makes single-writer reclamation
immediate.

The log is host-side control-plane state shared by all clients of a
deployment (it lives on :class:`repro.core.engine.RemoteLayout`); no
simulated RDMA traffic is charged for bookkeeping.
"""

from __future__ import annotations

import dataclasses

__all__ = ["RetiredExtent", "RetiredExtentLog"]


@dataclasses.dataclass(frozen=True)
class RetiredExtent:
    """One byte range a cutover retired from the live layout."""

    offset: int
    length: int
    #: The metadata version whose publication made this extent dead.
    #: Readers at versions ``< retired_version`` may still reference it.
    retired_version: int


class RetiredExtentLog:
    """Version-gated ledger of retired extents awaiting reclamation."""

    def __init__(self) -> None:
        self._entries: list[RetiredExtent] = []
        self._observed: dict[int, int] = {}
        self._next_token = 1

    # -- observer table --------------------------------------------------
    def register(self, version: int) -> int:
        """Add an observer at ``version``; returns its token.

        Tokens (not client names) identify observers: distinct clients
        may share a display name.
        """
        token = self._next_token
        self._next_token += 1
        self._observed[token] = int(version)
        return token

    def observe(self, token: int, version: int) -> None:
        """Record that observer ``token`` has seen ``version``.

        Monotonic: a lower version than already recorded is ignored.
        Unknown tokens re-register silently (a client may observe after
        a deregister/re-register cycle).
        """
        current = self._observed.get(token)
        if current is None or version > current:
            self._observed[token] = int(version)

    def deregister(self, token: int) -> None:
        """Drop an observer (client shutdown); releases its pin."""
        self._observed.pop(token, None)

    @property
    def observers(self) -> int:
        """Number of registered observers."""
        return len(self._observed)

    def min_observed(self) -> int | None:
        """Oldest version any registered observer may still be reading,
        or ``None`` when nobody is registered."""
        if not self._observed:
            return None
        return min(self._observed.values())

    # -- retirement ------------------------------------------------------
    def retire(self, offset: int, length: int, retired_version: int) -> None:
        """Log one extent retired by the publish of ``retired_version``."""
        if length <= 0:
            return
        self._entries.append(RetiredExtent(offset, length,
                                           int(retired_version)))

    @property
    def entries(self) -> tuple[RetiredExtent, ...]:
        """Extents retired but not yet reclaimed (oldest first)."""
        return tuple(self._entries)

    @property
    def pending_bytes(self) -> int:
        """Bytes held back from the allocator by the grace period."""
        return sum(entry.length for entry in self._entries)

    def reclaimable(self) -> list[RetiredExtent]:
        """Entries whose grace period has elapsed.

        An entry is reclaimable once every registered observer has
        observed a version ``>= retired_version``.  With no observers at
        all, nothing can be pinned, so everything is reclaimable.
        """
        floor = self.min_observed()
        if floor is None:
            return list(self._entries)
        return [entry for entry in self._entries
                if entry.retired_version <= floor]

    def reclaim(self, allocator) -> int:
        """Return reclaimable extents to ``allocator``; returns bytes freed.

        Reclaimed entries leave the log, so each extent is retired into
        the allocator exactly once.
        """
        floor = self.min_observed()
        freed = 0
        keep: list[RetiredExtent] = []
        for entry in self._entries:
            if floor is None or entry.retired_version <= floor:
                allocator.retire(entry.offset, entry.length)
                freed += entry.length
            else:
                keep.append(entry)
        self._entries = keep
        return freed
