"""Mutation-aware fsck checks: version chains, locks, leaks, orphans."""

from __future__ import annotations

import struct

from repro.core import DHnswClient, Scheme, fsck
from repro.layout.group_layout import OVERFLOW_SEALED
from repro.layout.metadata import rebuild_lock_offset

_U64 = struct.Struct("<Q")


def fresh_client(deployment, config, scheme=Scheme.DHNSW):
    return DHnswClient(deployment.layout, deployment.meta, config,
                       scheme=scheme, cost_model=deployment.cost_model)


def poke(layout, offset: int, data: bytes) -> None:
    layout.memory_node.write(layout.rkey, layout.addr(offset), data)


def findings_matching(report, text: str):
    return [finding for finding in report.findings
            if text in finding.message]


class TestVersionChain:
    def test_group_version_ahead_of_global_is_an_error(
            self, mutable_deployment, small_config, small_dataset):
        client = fresh_client(mutable_deployment, small_config)
        probe = small_dataset.queries[0]
        for i in range(small_config.overflow_capacity_records + 1):
            client.insert(probe + i * 1e-4, 900_000 + i)
        layout = mutable_deployment.layout
        # Rewind only the *global* version; the rebuilt group's stamp now
        # runs ahead, which a correct cutover can never produce.
        broken = layout.metadata.pack()
        poke(layout, 0, broken[:8] + _U64.pack(1) + broken[16:])
        report = fsck(layout)
        assert not report.clean
        assert findings_matching(report, "ahead of global")

    def test_held_rebuild_lock_is_a_warning(self, mutable_deployment,
                                            small_config):
        layout = mutable_deployment.layout
        poke(layout, rebuild_lock_offset(layout.metadata_nbytes, 0),
             _U64.pack(0xDEAD))
        report = fsck(layout)
        assert report.clean  # warning, not error: may be in flight
        assert findings_matching(report, "rebuild lock held")

    def test_sealed_area_in_live_metadata_is_an_error(
            self, mutable_deployment, small_config):
        layout = mutable_deployment.layout
        group = layout.metadata.groups[0]
        poke(layout, group.overflow_offset, _U64.pack(OVERFLOW_SEALED))
        report = fsck(layout)
        assert not report.clean
        assert findings_matching(report, "lost cutover")


class TestRetiredLedger:
    def test_unreclaimed_past_grace_period_is_a_leak_warning(
            self, small_dataset, small_config):
        """The leak check: an extent retired by a cutover whose grace
        period has elapsed, but which nobody ever reclaimed."""
        from repro.cluster import Deployment
        config = small_config.replace(reclaim_eager=False)
        deployment = Deployment(small_dataset.vectors, config)
        client = fresh_client(deployment, config)
        probe = small_dataset.queries[0]
        for i in range(config.overflow_capacity_records + 1):
            client.insert(probe + i * 1e-4, 910_000 + i)
        log = deployment.layout.retired
        assert log.pending_bytes > 0  # nothing reclaimed eagerly
        report = fsck(deployment.layout)
        assert report.clean  # a leak loses space, not correctness
        leaks = findings_matching(report, "never reclaimed")
        assert leaks
        assert all(finding.severity == "warning" for finding in leaks)

    def test_pinned_extents_are_not_flagged(self, mutable_deployment,
                                            small_config, small_dataset):
        """An extent still inside its grace period is healthy, not a
        leak: a registered reader remains one epoch behind."""
        writer = fresh_client(mutable_deployment, small_config)
        reader = fresh_client(mutable_deployment, small_config)
        probe = small_dataset.queries[0]
        reader.search(probe, 1, ef_search=16)  # registers at old epoch
        for i in range(small_config.overflow_capacity_records + 1):
            writer.insert(probe + i * 1e-4, 920_000 + i)
        assert mutable_deployment.layout.retired.pending_bytes > 0
        report = fsck(mutable_deployment.layout)
        assert report.clean, report.summary()
        assert not findings_matching(report, "never reclaimed")

    def test_retired_extent_overlapping_live_layout_is_an_error(
            self, mutable_deployment, small_config):
        layout = mutable_deployment.layout
        entry = layout.metadata.clusters[0]
        layout.retired.retire(entry.blob_offset, 16, retired_version=99)
        report = fsck(layout)
        assert not report.clean
        assert findings_matching(report, "overlaps live")


class TestOrphanExtents:
    def test_clean_layout_has_no_orphans(self, mutable_deployment,
                                         small_config, small_dataset):
        client = fresh_client(mutable_deployment, small_config)
        probe = small_dataset.queries[0]
        for i in range(small_config.overflow_capacity_records + 2):
            client.insert(probe + i * 1e-4, 930_000 + i)
        report = fsck(mutable_deployment.layout)
        assert not findings_matching(report, "orphan extent")

    def test_allocation_never_published_is_an_orphan(
            self, mutable_deployment, small_config):
        """A crashed rebuild's shadow allocation — claimed from the
        allocator but referenced by nothing — is reported as lost."""
        mutable_deployment.layout.allocator.allocate(4096)
        report = fsck(mutable_deployment.layout)
        orphans = findings_matching(report, "orphan extent")
        assert orphans
        assert all(finding.severity == "warning" for finding in orphans)
