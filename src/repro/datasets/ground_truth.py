"""Exact brute-force k-nearest-neighbour ground truth.

Recall in every experiment is measured against this oracle, exactly as the
SIFT/GIST benchmark suites ship precomputed exact neighbours.  Both axes
stream: queries are processed in chunks and the corpus in fixed-size
blocks, so the distance matrix held at any moment is at most
``chunk_size x corpus_block`` floats no matter how large the corpus is —
what keeps 1M-vector ground truth inside a bounded memory footprint.
"""

from __future__ import annotations

import numpy as np

from repro.hnsw.distance import DistanceKernel, Metric

__all__ = ["exact_knn"]


def exact_knn(corpus: np.ndarray, queries: np.ndarray, k: int,
              metric: "str | Metric" = Metric.L2,
              chunk_size: int = 256,
              corpus_block: int = 131_072) -> np.ndarray:
    """Exact top-``k`` corpus indices for each query row.

    Returns an ``(num_queries, k)`` int64 array, columns sorted by
    ascending ``(distance, id)`` — the id tie-break makes the result
    independent of how the corpus is blocked (up to exact distance ties
    straddling a block's own ``argpartition`` boundary, which float
    descriptor data does not produce).  ``k`` is clipped to the corpus
    size; ``corpus_block`` bounds how many corpus rows are scored at
    once.
    """
    corpus = np.atleast_2d(np.asarray(corpus, dtype=np.float32))
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if corpus_block < 1:
        raise ValueError(f"corpus_block must be >= 1, got {corpus_block}")
    k = min(k, corpus.shape[0])
    kernel = DistanceKernel(corpus.shape[1], metric)
    out = np.empty((queries.shape[0], k), dtype=np.int64)
    for start in range(0, queries.shape[0], chunk_size):
        block = queries[start:start + chunk_size]
        # Running top-k candidates per query: each corpus block
        # contributes its local winners, merged by (distance, id).
        best_dists: np.ndarray | None = None
        best_ids: np.ndarray | None = None
        for base in range(0, corpus.shape[0], corpus_block):
            sub = corpus[base:base + corpus_block]
            dists = kernel.cross(block, sub)
            take = min(k, sub.shape[0])
            # argpartition then sort the winners: O(n + k log k) per query.
            top = np.argpartition(dists, take - 1, axis=1)[:, :take]
            cand_dists = np.take_along_axis(dists, top, axis=1)
            cand_ids = top.astype(np.int64) + base
            if best_dists is not None:
                cand_dists = np.concatenate([best_dists, cand_dists], axis=1)
                cand_ids = np.concatenate([best_ids, cand_ids], axis=1)
            # Row-wise lexicographic order: distance primary, id secondary.
            order = np.lexsort((cand_ids, cand_dists), axis=-1)[:, :k]
            best_dists = np.take_along_axis(cand_dists, order, axis=1)
            best_ids = np.take_along_axis(cand_ids, order, axis=1)
        out[start:start + block.shape[0]] = best_ids
    return out
