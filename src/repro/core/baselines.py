"""The three schemes evaluated in §4, expressed as loading policies.

All schemes share the meta-HNSW and the remote layout; they differ only in
how sub-HNSW clusters travel from the memory pool to the compute pool:

* **Naive d-HNSW** — one ``RDMA_READ`` round trip per (query, cluster)
  pair: no cache, no batch-level deduplication, no doorbell batching.
* **d-HNSW w/o doorbell** — meta-HNSW caching and query-aware loading
  (dedup + cluster cache), but discontinuous clusters are read in one
  round trip *each*.
* **d-HNSW** — everything above plus doorbell batching: discontinuous
  clusters fetched in a single network round trip per doorbell ring.
"""

from __future__ import annotations

import dataclasses
import enum

__all__ = ["Scheme", "SchemePolicy", "policy_for"]


class Scheme(enum.Enum):
    """Evaluation schemes of the paper (§4)."""

    NAIVE = "naive-d-hnsw"
    NO_DOORBELL = "d-hnsw-no-doorbell"
    DHNSW = "d-hnsw"


@dataclasses.dataclass(frozen=True)
class SchemePolicy:
    """Loading behaviour toggles derived from a scheme."""

    deduplicate_batch: bool
    use_cluster_cache: bool
    doorbell_batching: bool


_POLICIES = {
    Scheme.NAIVE: SchemePolicy(
        deduplicate_batch=False, use_cluster_cache=False,
        doorbell_batching=False),
    Scheme.NO_DOORBELL: SchemePolicy(
        deduplicate_batch=True, use_cluster_cache=True,
        doorbell_batching=False),
    Scheme.DHNSW: SchemePolicy(
        deduplicate_batch=True, use_cluster_cache=True,
        doorbell_batching=True),
}


def policy_for(scheme: Scheme) -> SchemePolicy:
    """The loading policy implementing ``scheme``."""
    return _POLICIES[scheme]
