#!/usr/bin/env python3
"""Streaming ingestion: concurrent inserts and queries on shared memory.

d-HNSW's RDMA-friendly layout (§3.2) exists so that *dynamic insertions*
stay cheap: a new vector costs one remote fetch-and-add (slot
reservation) plus one WRITE into the group's shared overflow area, and
queries keep reading cluster + fresh inserts with a single READ.  When an
overflow area fills, the group is rebuilt and relocated, and every
compute instance picks up the new offsets through the versioned metadata
block.

This example drives that machinery like a recommendation system ingesting
new item embeddings while serving lookups:

* a writer instance streams in new items;
* a reader instance serves user queries concurrently, observing fresh
  items immediately (overflow-tail validation);
* we report how many rebuilds happened and what insertion cost on the
  wire.

Run:  python examples/streaming_ingest.py
"""

from __future__ import annotations

import numpy as np

from repro import Deployment, DHnswConfig
from repro.datasets.synthetic import make_clustered

DIM = 64
BASE_ITEMS = 4000
STREAMED_ITEMS = 300


def main() -> None:
    rng = np.random.default_rng(21)
    catalogue = make_clustered(BASE_ITEMS, DIM, num_clusters=30,
                               cluster_std=0.05, rng=rng)

    # Small overflow areas so the example actually exercises rebuilds.
    config = DHnswConfig(nprobe=3, cache_fraction=0.15,
                         overflow_capacity_records=24, seed=21)
    deployment = Deployment(catalogue, config, num_compute_instances=2,
                            simulate_link_contention=False)
    writer = deployment.client(0)
    reader = deployment.client(1)

    print(f"serving {BASE_ITEMS} items; streaming {STREAMED_ITEMS} "
          f"new items while querying...")

    new_items = make_clustered(STREAMED_ITEMS, DIM, num_clusters=30,
                               cluster_std=0.05, rng=rng)
    rebuilds = 0
    insert_round_trips = 0
    missed = 0
    for i, item in enumerate(new_items):
        before = writer.node.stats.snapshot()
        report = writer.insert(item, global_id=BASE_ITEMS + i)
        insert_round_trips += writer.node.stats.delta(before).round_trips
        rebuilds += report.triggered_rebuild

        # Every 10th insert, the reader instance looks the item up.
        if i % 10 == 0:
            hit = reader.search(item, k=1, ef_search=32)
            if hit.ids[0] != BASE_ITEMS + i:
                missed += 1

    print(f"  inserted {STREAMED_ITEMS} items")
    print(f"  group rebuilds triggered : {rebuilds}")
    print(f"  mean round trips/insert  : "
          f"{insert_round_trips / STREAMED_ITEMS:.2f} "
          f"(FAA + WRITE + metadata checks; rebuilds add bursts)")
    print(f"  reader lookups that missed a fresh item: {missed}")

    fragmentation = deployment.layout.allocator.fragmentation()
    print(f"  remote region fragmentation after rebuilds: "
          f"{fragmentation:.1%} "
          f"({deployment.layout.allocator.dead_bytes / 1024:.0f} KiB dead)")

    # Final sanity: batch-query a sample of streamed items.
    sample = rng.choice(STREAMED_ITEMS, size=50, replace=False)
    batch = reader.search_batch(new_items[sample], k=1, ef_search=48)
    found = sum(int(result.ids[0]) == BASE_ITEMS + int(idx)
                for result, idx in zip(batch.results, sample))
    print(f"  final check: {found}/50 streamed items found as top-1")


if __name__ == "__main__":
    main()
