"""Hot/cold tiered-memory benchmark: DRAM footprint vs quality.

PR 9 put a PQ cold tier underneath the full-precision cluster cache:
every cluster also has a compact cold extent (short codes, optionally a
Vamana adjacency) served with one RDMA READ + ADC + a narrow exact
rerank, and a background rebalancer promotes only the EWMA-hottest
clusters into a bounded full-precision hot tier.  This harness stands up
the CI scenario (200k x 128d, 400 clusters, batch 256) under a Zipfian
cluster-popularity workload and gates the memory-frontier claim:

* **DRAM reduction** — some swept hot-tier budget must cut steady-state
  compute DRAM by >= 70 % against the untiered baseline...
* **recall floor** — ...while keeping >= 95 % of the baseline's
  recall@10...
* **latency ceiling** — ...with p99 simulated batch latency within
  1.5x of the baseline's;
* **off bit-identity** — ``cold_tier="off"`` must remain *exactly*
  today's engine: byte-identical base extents between an off build and
  a pq build, and staged-vs-reference answers, RdmaStats and cache
  counters identical across serial/pipelined x worker-count schedules.

Any violated gate exits non-zero, so the CI tiered-smoke job doubles as
a regression gate.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_tiered.py           # full
    PYTHONPATH=src python benchmarks/perf/bench_tiered.py --ci      # 200k
    PYTHONPATH=src python benchmarks/perf/bench_tiered.py --quick   # 30k

Writes ``benchmarks/perf/BENCH_tiered.json`` (override with ``--output``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import platform
import time

import numpy as np

from repro.cluster import Deployment
from repro.core import DHnswClient, DHnswConfig
from repro.core.partitions import assign_partitions
from repro.datasets import exact_knn, sift1m_like
from repro.layout.group_layout import cluster_read_extent
from repro.workloads import zipfian_cluster_queries

DEFAULT_OUTPUT = pathlib.Path(__file__).parent / "BENCH_tiered.json"

#: ``ci`` is the scenario the acceptance criteria name: 200k x 128d in
#: 400 clusters, batch 256.  ``quick`` exists for local iteration;
#: ``full`` approaches the paper's SIFT1M scale.
SCALES = {
    "full": dict(num_vectors=1_000_000, num_clusters=2_000,
                 batch_size=256, batches=8, eval_queries=256),
    "ci": dict(num_vectors=200_000, num_clusters=400,
               batch_size=256, batches=8, eval_queries=256),
    "quick": dict(num_vectors=30_000, num_clusters=120,
                  batch_size=128, batches=6, eval_queries=128),
}

#: Swept hot-tier budgets, as fractions of the baseline's steady-state
#: compute-DRAM footprint.
BUDGET_FRACTIONS = [0.05, 0.15, 0.25]

#: Batches excluded from the latency percentile: the first few batches
#: pay cold-start fetches and tier warm-up on both sides of the
#: comparison, and the gate is about *steady-state* p99.
WARMUP_BATCHES = 3

#: Acceptance thresholds (ISSUE 9).
MIN_DRAM_REDUCTION = 0.70
MIN_RECALL_RATIO = 0.95
MAX_P99_RATIO = 1.5

ORACLE_MATRIX = [(False, 1), (False, 4), (True, 1), (True, 4)]


def check(condition: bool, what: str) -> None:
    if not condition:
        raise SystemExit(f"ACCEPTANCE FAILURE: {what}")


def recall_at_10(ids: np.ndarray, ground_truth: np.ndarray) -> float:
    hits = sum(len(np.intersect1d(row, truth))
               for row, truth in zip(ids, ground_truth))
    return hits / ground_truth.size


def make_workload(vectors, assignments, scale, seed):
    """Zipfian cluster-popularity batches + one held-out eval batch."""
    rng = np.random.default_rng(seed)
    batches = [zipfian_cluster_queries(vectors, assignments,
                                       scale["batch_size"], rng,
                                       skew=1.2, noise_std=0.01)
               for _ in range(scale["batches"])]
    eval_batch = zipfian_cluster_queries(vectors, assignments,
                                         scale["eval_queries"], rng,
                                         skew=1.2, noise_std=0.01)
    return batches, eval_batch


def serve(deployment, config, batches, eval_batch, ground_truth, name):
    """Run the workload on one client; return the measured section."""
    client = DHnswClient(deployment.layout, deployment.meta, config,
                         cost_model=deployment.cost_model, name=name)
    try:
        latencies = []
        cold_served = 0
        promotions = demotions = 0
        wall_start = time.perf_counter()
        for index, batch in enumerate(batches):
            result = client.search_batch(batch, k=10)
            if index >= WARMUP_BATCHES:
                latencies.append(result.latency_per_query_us)
            cold_served += result.cold_clusters_served
            promotions += result.tier_promotions
            demotions += result.tier_demotions
        wall = time.perf_counter() - wall_start
        final = client.search_batch(eval_batch, k=10)
        latencies.append(final.latency_per_query_us)
        ids = np.stack([r.ids for r in final.results])
        tier = client.tier_store
        return {
            "dram_used_bytes": client.node.dram_used_bytes,
            "cache_bytes": client.cache.cached_bytes,
            "recall_at_10": round(recall_at_10(ids, ground_truth), 4),
            "p99_latency_per_query_us": round(
                float(np.percentile(latencies, 99)), 2),
            "mean_latency_per_query_us": round(
                float(np.mean(latencies)), 2),
            "wall_seconds": round(wall, 2),
            "cold_clusters_served": cold_served,
            "tier_promotions": promotions,
            "tier_demotions": demotions,
            "hot_tier_bytes": tier.hot_tier_bytes() if tier else None,
            "tier_counts": list(tier.tier_counts()) if tier else None,
        }
    finally:
        client.close()


def off_bit_identity_oracle(deployment, queries):
    """Staged vs reference, serial/pipelined x workers, off mode."""
    outcomes = []
    for pipeline, workers in ORACLE_MATRIX:
        config = deployment.config.replace(pipeline_waves=pipeline,
                                           search_workers=workers)
        staged = DHnswClient(deployment.layout, deployment.meta, config,
                             cost_model=deployment.cost_model,
                             name=f"staged-{pipeline}-{workers}")
        oracle = DHnswClient(deployment.layout, deployment.meta, config,
                             cost_model=deployment.cost_model,
                             name=f"oracle-{pipeline}-{workers}")
        oracle.engine.plan_executor = "reference"
        try:
            lhs = staged.search_batch(queries, k=10)
            rhs = oracle.search_batch(queries, k=10)
            identical = (
                all(np.array_equal(a.ids, b.ids)
                    and np.array_equal(a.distances, b.distances)
                    for a, b in zip(lhs.results, rhs.results))
                and dataclasses.asdict(lhs.rdma)
                == dataclasses.asdict(rhs.rdma)
                and staged.cache.counters() == oracle.cache.counters())
            check(identical,
                  f"cold_tier='off' staged vs reference diverged at "
                  f"pipeline={pipeline} workers={workers}")
            outcomes.append({"pipeline_waves": pipeline,
                             "search_workers": workers,
                             "bit_identical": True})
        finally:
            staged.close()
            oracle.close()
    return outcomes


def read_base_extents(deployment):
    layout = deployment.layout
    node = deployment.memory_node
    metadata = layout.metadata
    return [bytes(node.read(layout.rkey, layout.addr(offset), length))
            for offset, length in
            (cluster_read_extent(metadata, cid)
             for cid in range(len(metadata.clusters)))]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--ci", action="store_true",
                       help="200k-vector tiered-smoke run")
    group.add_argument("--quick", action="store_true",
                       help="30k-vector local iteration run")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    mode = "ci" if args.ci else "quick" if args.quick else "full"
    scale = SCALES[mode]

    dataset = sift1m_like(num_vectors=scale["num_vectors"],
                          num_queries=scale["eval_queries"],
                          num_clusters=scale["num_clusters"],
                          gt_k=10, seed=42)
    # 32 subspaces over 128d (4 dims per 8-bit code) keeps ADC faithful
    # enough that a 128-deep per-query exact rerank recovers >= 95 % of
    # full-precision recall; the codes never touch compute DRAM, so the
    # finer quantization costs only memory-node bytes.
    base = DHnswConfig(num_representatives=scale["num_clusters"],
                       nprobe=4, ef_meta=32, cache_fraction=1.0,
                       batch_size=scale["batch_size"],
                       overflow_capacity_records=64, seed=42,
                       pq_subspaces=64, rerank_depth=96)

    build_start = time.perf_counter()
    off_deployment = Deployment(dataset.vectors,
                                base.replace(cold_tier="off"),
                                simulate_link_contention=False)
    off_build_s = time.perf_counter() - build_start
    build_start = time.perf_counter()
    pq_deployment = Deployment(dataset.vectors,
                               base.replace(cold_tier="pq"),
                               simulate_link_contention=False)
    pq_build_s = time.perf_counter() - build_start

    # Gate: the full-precision extents must not move by a byte.
    check(read_base_extents(off_deployment)
          == read_base_extents(pq_deployment),
          "pq build perturbed the full-precision cluster extents")

    assignments = assign_partitions(dataset.vectors,
                                    off_deployment.meta).assignments
    batches, eval_batch = make_workload(dataset.vectors, assignments,
                                        scale, seed=7)
    ground_truth = exact_knn(dataset.vectors, eval_batch, 10)

    # Baseline: untiered full-precision serving, whole working set in DRAM.
    baseline = serve(off_deployment, off_deployment.config, batches,
                     eval_batch, ground_truth, "baseline")
    baseline_dram = baseline["dram_used_bytes"]

    # Budget sweep on the tiered build.
    sweep = []
    for fraction in BUDGET_FRACTIONS:
        budget = int(baseline_dram * fraction)
        config = pq_deployment.config.replace(
            hot_tier_budget_bytes=budget)
        section = serve(pq_deployment, config, batches, eval_batch,
                        ground_truth, f"tiered-{fraction}")
        section["budget_fraction"] = fraction
        section["hot_tier_budget_bytes"] = budget
        section["dram_reduction"] = round(
            1.0 - section["dram_used_bytes"] / baseline_dram, 4)
        section["recall_ratio"] = round(
            section["recall_at_10"] / baseline["recall_at_10"], 4)
        section["p99_ratio"] = round(
            section["p99_latency_per_query_us"]
            / baseline["p99_latency_per_query_us"], 4)
        sweep.append(section)

    passing = [s for s in sweep
               if s["dram_reduction"] >= MIN_DRAM_REDUCTION
               and s["recall_ratio"] >= MIN_RECALL_RATIO
               and s["p99_ratio"] <= MAX_P99_RATIO]
    check(bool(passing),
          f"no swept budget reached {MIN_DRAM_REDUCTION:.0%} DRAM "
          f"reduction at >= {MIN_RECALL_RATIO:.0%} relative recall@10 "
          f"and p99 <= {MAX_P99_RATIO}x (sweep: "
          + "; ".join(f"{s['budget_fraction']}: "
                      f"dram -{s['dram_reduction']:.0%}, "
                      f"recall x{s['recall_ratio']:.3f}, "
                      f"p99 x{s['p99_ratio']:.2f}" for s in sweep) + ")")
    headline = max(passing, key=lambda s: s["dram_reduction"])

    oracle = off_bit_identity_oracle(off_deployment, batches[0])

    report = {
        "benchmark": "tiered hot/cold memory under Zipfian cluster skew",
        "mode": mode,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "dataset": {
            "kind": dataset.name,
            "num_vectors": int(dataset.num_vectors),
            "dim": int(dataset.dim),
            "num_clusters": scale["num_clusters"],
            "batch_size": scale["batch_size"],
            "batches": scale["batches"],
            "zipf_skew": 1.2,
            "seed": 42,
        },
        "build_seconds": {"off": round(off_build_s, 1),
                          "pq": round(pq_build_s, 1)},
        "baseline": baseline,
        "sweep": sweep,
        "headline": {
            "budget_fraction": headline["budget_fraction"],
            "dram_reduction": headline["dram_reduction"],
            "recall_ratio": headline["recall_ratio"],
            "p99_ratio": headline["p99_ratio"],
        },
        "off_bit_identity": {
            "base_extents_byte_identical": True,
            "staged_vs_reference": oracle,
        },
        "acceptance": {
            "min_dram_reduction": MIN_DRAM_REDUCTION,
            "min_recall_ratio": MIN_RECALL_RATIO,
            "max_p99_ratio": MAX_P99_RATIO,
            "passed": True,
        },
    }

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({k: report[k] for k in
                      ("baseline", "sweep", "headline",
                       "off_bit_identity", "acceptance")}, indent=2))
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
