#!/usr/bin/env python3
"""Scaling past one memory node: sharded d-HNSW with an operator report.

Extends the paper's single-memory-node design the way Pyramid (the
system that inspired meta-HNSW) scales out: the corpus is split
round-robin across multiple memory nodes, each shard runs its own
d-HNSW deployment, queries fan out to every shard and merge top-k.

Also demonstrates the operational tooling that ships with the library:
operation traces (record once, replay anywhere) and the deployment
telemetry report.

Run:  python examples/sharded_scaleout.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import DHnswConfig, recall_at_k
from repro.cluster import Deployment, ShardedDeployment
from repro.datasets import sift_like
from repro.replay import TraceWriter, read_trace, replay
from repro.telemetry import DeploymentTelemetry, render_report


def main() -> None:
    dataset = sift_like(num_vectors=4000, num_queries=150,
                        num_clusters=50, seed=5)
    config = DHnswConfig(nprobe=6, cache_fraction=0.15, seed=5)

    print("building 1-node and 3-node deployments of the same corpus...")
    single = Deployment(dataset.vectors, config)
    sharded = ShardedDeployment(dataset.vectors, config, num_shards=3)

    print("\nrecording a query trace...")
    with tempfile.NamedTemporaryFile(mode="w", suffix=".jsonl",
                                     delete=False) as handle:
        trace_path = handle.name
    with TraceWriter(trace_path) as trace:
        for query in dataset.queries:
            trace.search(query, k=10, ef_search=48)
        trace.insert(dataset.queries[0], global_id=1_000_000)
        trace.search(dataset.queries[0], k=1, ef_search=48)

    print("replaying the identical trace against both deployments...\n")
    header = (f"{'deployment':<12} {'recall@10':>10} {'latency_us':>11} "
              f"{'memory_nodes':>13}")
    print(header)
    for name, target, nodes in (("1 node", single.client(0), 1),
                                ("3 shards", sharded, 3)):
        replay(target, read_trace(trace_path))
        batch = target.search_batch(dataset.queries, 10, ef_search=48)
        recall = recall_at_k(batch.ids_list(), dataset.ground_truth, 10)
        print(f"{name:<12} {recall:>10.3f} "
              f"{batch.latency_per_query_us:>11.2f} {nodes:>13}")

    found = sharded.search(dataset.queries[0], 1, ef_search=48)
    print(f"\ninserted id via trace found on its shard: "
          f"{found.ids[0] == 1_000_000}")
    print(f"total remote memory across shards: "
          f"{sharded.total_registered_bytes / 2**20:.1f} MiB")

    print("\noperator report for shard 0:\n")
    print(render_report(
        DeploymentTelemetry.from_deployment(sharded.deployments[0])))


if __name__ == "__main__":
    main()
