"""Shadow group rebuilds: non-blocking relocation with versioned cutover.

When a group's shared overflow fills, its two sub-HNSW clusters are
merged with their overflow records and relocated to the region tail.
:class:`ShadowRebuild` performs that as a *shadow* operation — readers
keep serving the old extents for the entire build — in five steps:

``acquire``
    Win rebuild leadership with a remote CAS on the group's lock word
    (a u64 in the metadata reserve, see
    :func:`repro.layout.metadata.rebuild_lock_offset`).  A lost CAS
    means another writer is already rebuilding this group; the loser
    yields, refreshes metadata, and retries its reservation against the
    rebuilt group instead of duplicating the work.

``snapshot``
    One READ covering the whole group (both blobs + overflow).  Records
    ``T0``, the overflow tail at snapshot time.  Writers may keep
    appending past ``T0`` while the build runs — slots are write-once,
    so the snapshot prefix can never be torn.

``build``
    Merge each member's blob with its overflow records ``[0, T0)`` into
    a fresh sub-HNSW blob (``BuildPool`` fan-out).  Pure compute,
    charged to the *rebuilder's* clock only — no reader waits on it.

``write``
    Allocate ``[blob A][fresh overflow][blob B]`` at the region tail
    and write the new blobs plus a zeroed tail counter.  The live
    metadata still points at the old extents; readers are unaffected.

``cutover``
    The one atomic publication step: seal the old tail with a single
    ``FAA(+OVERFLOW_SEALED)`` (whose return value pins the exact final
    count ``T1``), migrate the late records ``[T0, T1)`` into the new
    overflow, then publish metadata with the group's version and the
    global version each bumped by one.  The old extents are logged to
    the :class:`~repro.mutation.reclaim.RetiredExtentLog` — reclaimed
    only after every registered reader has observed the new version.
    Finally the lock word is released.

The sealed tail still encodes the true record count
(``tail - OVERFLOW_SEALED``), so the retired extent remains a
decodable, consistent snapshot for readers pinned to the previous
metadata epoch; a racing writer's FAA lands ``>= OVERFLOW_SEALED``,
rolls back, and retries at the new location
(:class:`repro.errors.GroupSealedError`).

The simulator executes each client op atomically (single-threaded,
op-granularity interleaving), so a record FAA-reserved before the seal
is always fully written by the time the cutover migrates it; a real
implementation would quiesce in-flight writes with a bounded wait
before migrating.

``run()`` drives all steps to completion (the inline, insert-triggered
path); ``step()`` advances one state at a time so a harness can
interleave reader batches with an in-flight rebuild and measure that
the build never lands in a reader's critical path.
"""

from __future__ import annotations

import dataclasses
import struct
import zlib

from repro.core.build_pool import BuildPool
from repro.errors import LayoutError
from repro.hnsw.parallel_build import ClusterRebuildTask, rebuild_cluster_blob
from repro.layout.group_layout import (
    OVERFLOW_SEALED,
    OVERFLOW_TAIL_BYTES,
    decode_overflow_tail,
    overflow_area_size,
)
from repro.layout.metadata import (ColdDirectory, ColdExtentEntry,
                                   GlobalMetadata, rebuild_lock_offset)
from repro.layout.serializer import (
    OverflowRecord,
    overflow_record_size,
    pack_overflow_records,
    unpack_overflow_records,
)
from repro.serving.trace import TraceContext, span

__all__ = ["ShadowRebuild", "writer_token"]

_U64 = struct.Struct("<Q")


def writer_token(name: str) -> int:
    """Deterministic nonzero lock token for a writer name.

    CRC32-based (never Python's salted ``hash``) so a seeded schedule
    produces the same lock traffic in every process.  Collisions between
    same-named writers are harmless: acquisition succeeds only on a
    ``0 -> token`` transition, and only the winner ever releases.
    """
    return (zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF) | 1


@dataclasses.dataclass
class _Snapshot:
    """State captured by the snapshot step and consumed downstream."""

    member_ids: list[int]
    blobs: dict[int, bytes]
    records: list[OverflowRecord]
    t0: int
    old_start: int
    old_end: int
    old_overflow_offset: int
    capacity_records: int


class ShadowRebuild:
    """One group's shadow rebuild, driven step-wise or to completion."""

    STEPS = ("acquire", "snapshot", "build", "write", "cutover")

    def __init__(self, host, group_id: int,
                 trace: TraceContext | None = None) -> None:
        self.host = host
        self.group_id = group_id
        self.trace = trace
        self.state = "acquire"
        self.token = writer_token(host.node.name)
        self.migrated_records = 0
        self._snapshot: _Snapshot | None = None
        self._new_blobs: list[bytes] = []
        self._new_offsets: list[int] = []
        self._new_overflow_offset = 0
        self._new_base = 0
        self._new_total = 0

    # -- lifecycle -------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the cutover has published."""
        return self.state == "done"

    @property
    def yielded(self) -> bool:
        """True when another writer held the lock (no work performed)."""
        return self.state == "yielded"

    def run(self) -> bool:
        """Drive every remaining step; True if this writer led the
        rebuild to completion, False if it yielded to another leader."""
        while not (self.done or self.yielded):
            self.step()
        return self.done

    def step(self) -> str:
        """Execute the current step and advance; returns its name."""
        state = self.state
        if state in ("done", "yielded"):
            return state
        getattr(self, f"_step_{state}")()
        return state

    # -- step implementations --------------------------------------------
    def _lock_addr(self) -> int:
        offset = rebuild_lock_offset(self.host.layout.metadata_nbytes,
                                     self.group_id)
        return self.host.layout.addr(offset)

    def _step_acquire(self) -> None:
        host = self.host
        prior = host.transport.cas(host.layout.rkey, self._lock_addr(),
                                   0, self.token)
        if prior != 0:
            # Another writer leads this group's rebuild; don't duplicate.
            self.state = "yielded"
            return
        self.state = "snapshot"

    def _step_snapshot(self) -> None:
        host = self.host
        metadata = host.metadata
        group = metadata.groups[self.group_id]
        member_ids = [cid for cid, entry in enumerate(metadata.clusters)
                      if entry.group_id == self.group_id]
        area = overflow_area_size(metadata.dim, group.capacity_records)
        start = min(min(metadata.clusters[cid].blob_offset
                        for cid in member_ids), group.overflow_offset)
        end = max(max(metadata.clusters[cid].blob_offset
                      + metadata.clusters[cid].blob_length
                      for cid in member_ids),
                  group.overflow_offset + area)
        with span(self.trace, "snapshot"):
            payload = host.transport.read(host.layout.rkey,
                                          host.layout.addr(start),
                                          end - start)
            host.node.charge_time(
                host.cost_model.deserialize_us(len(payload)))
        overflow_off = group.overflow_offset - start
        (raw_tail,) = _U64.unpack_from(payload, overflow_off)
        t0, sealed = decode_overflow_tail(raw_tail, group.capacity_records)
        if sealed:
            raise LayoutError(
                f"group {self.group_id} already sealed while its rebuild "
                f"lock is held — lost or leaked cutover")
        records = unpack_overflow_records(
            payload[overflow_off + OVERFLOW_TAIL_BYTES:],
            metadata.dim, t0)
        blobs: dict[int, bytes] = {}
        for cid in member_ids:
            cluster = metadata.clusters[cid]
            # Mandatory copy: the payload is a zero-copy view over region
            # memory the allocator may recycle before the build finishes
            # (and blobs are pickled to pool workers anyway).
            blobs[cid] = bytes(payload[cluster.blob_offset - start:
                                       cluster.blob_offset - start
                                       + cluster.blob_length])
        self._snapshot = _Snapshot(
            member_ids=member_ids, blobs=blobs, records=records, t0=t0,
            old_start=start, old_end=end,
            old_overflow_offset=group.overflow_offset,
            capacity_records=group.capacity_records)
        self.state = "build"

    def _step_build(self) -> None:
        host = self.host
        snap = self._snapshot
        assert snap is not None
        tasks = []
        for cid in snap.member_ids:
            tasks.append(ClusterRebuildTask(
                cluster_id=cid, dim=host.metadata.dim,
                blob=snap.blobs[cid],
                records=[record for record in snap.records
                         if record.cluster_id == cid],
                params=host.config.sub_params))
        # Members rebuild independently; tasks are pure, so any worker
        # count produces the same blobs.
        with span(self.trace, "build"):
            with BuildPool(min(host.config.build_workers,
                               len(tasks))) as pool:
                self._new_blobs = list(pool.map(rebuild_cluster_blob, tasks))
        self.state = "write"

    def _step_write(self) -> None:
        host = self.host
        snap = self._snapshot
        assert snap is not None
        area = overflow_area_size(host.metadata.dim, snap.capacity_records)
        # [blob A][fresh overflow][blob B] at the region tail (+8 slack
        # for the alignment pad below).
        total = sum(len(blob) for blob in self._new_blobs) + area + 8
        base = host.layout.allocator.allocate(total)
        overflow_offset = base + len(self._new_blobs[0])
        # Keep the tail counter 8-byte aligned for remote atomics.
        overflow_offset += (-overflow_offset) % 8
        offsets = [base]
        if len(self._new_blobs) > 1:
            offsets.append(overflow_offset + area)
        with span(self.trace, "write"):
            for blob, offset in zip(self._new_blobs, offsets):
                host.transport.write(host.layout.rkey,
                                     host.layout.addr(offset), blob)
            # Fresh tail = 0; written explicitly so relocation onto
            # recycled space never inherits a stale (sealed) counter.
            host.transport.write(host.layout.rkey,
                                 host.layout.addr(overflow_offset),
                                 bytes(OVERFLOW_TAIL_BYTES))
        self._new_base = base
        self._new_total = total
        self._new_offsets = offsets
        self._new_overflow_offset = overflow_offset
        self.state = "cutover"

    def _step_cutover(self) -> None:
        host = self.host
        snap = self._snapshot
        assert snap is not None
        record_size = overflow_record_size(host.metadata.dim)
        with span(self.trace, "publish"):
            # 1. Seal the old tail.  The FAA's return value is the exact
            #    final raw tail — no later reservation can land below the
            #    sentinel, so T1 is pinned atomically with the seal.
            raw_prior = host.transport.faa(
                host.layout.rkey,
                host.layout.addr(snap.old_overflow_offset),
                OVERFLOW_SEALED)
            t1, _ = decode_overflow_tail(raw_prior, snap.capacity_records)
            # 2. Migrate the late records [T0, T1) into the new overflow.
            migrated: list[OverflowRecord] = []
            if t1 > snap.t0:
                blob = host.transport.read(
                    host.layout.rkey,
                    host.layout.addr(snap.old_overflow_offset
                                     + OVERFLOW_TAIL_BYTES
                                     + snap.t0 * record_size),
                    (t1 - snap.t0) * record_size)
                migrated = unpack_overflow_records(
                    bytes(blob), host.metadata.dim, t1 - snap.t0)
                host.transport.write(
                    host.layout.rkey,
                    host.layout.addr(self._new_overflow_offset
                                     + OVERFLOW_TAIL_BYTES),
                    pack_overflow_records(migrated))
            host.transport.write(
                host.layout.rkey,
                host.layout.addr(self._new_overflow_offset),
                _U64.pack(len(migrated)))
            self.migrated_records = len(migrated)
            # 3. Publish against the *authoritative* block: another
            #    group's rebuild may have published since this one
            #    started, so re-read rather than trusting the local copy
            #    (read-modify-write; atomic at the simulator's op
            #    granularity).
            remote = GlobalMetadata.unpack(host.transport.read(
                host.layout.rkey, host.layout.addr(0),
                host.layout.metadata_nbytes))
            clusters = list(remote.clusters)
            for cid, offset, blob in zip(snap.member_ids, self._new_offsets,
                                         self._new_blobs):
                clusters[cid] = dataclasses.replace(
                    clusters[cid], blob_offset=offset,
                    blob_length=len(blob))
            groups = list(remote.groups)
            groups[self.group_id] = dataclasses.replace(
                groups[self.group_id],
                overflow_offset=self._new_overflow_offset,
                version=groups[self.group_id].version + 1)
            # A rebuilt member's cold extent is stale twice over: its
            # codes predate the merged overflow and its vectors_offset
            # points at the retired blob.  Zero the entry (the cluster
            # serves hot until a future re-encode) and retire the extent
            # through the grace-period log.
            cold = remote.cold
            stale_cold: list[ColdExtentEntry] = []
            if cold is not None:
                extents = list(cold.extents)
                for cid in snap.member_ids:
                    stale = extents[cid]
                    if stale.length > 0:
                        stale_cold.append(stale)
                    extents[cid] = ColdExtentEntry(0, 0)
                cold = ColdDirectory(codebook_offset=cold.codebook_offset,
                                     codebook_length=cold.codebook_length,
                                     extents=extents)
            fresh = GlobalMetadata(
                version=remote.version + 1, dim=remote.dim,
                overflow_capacity_records=remote.overflow_capacity_records,
                clusters=clusters, groups=groups, cold=cold)
            host.transport.write(host.layout.rkey, host.layout.addr(0),
                                 fresh.pack())
            # 4. Retire the old extents behind the grace period: readers
            #    pinned to the previous epoch may still be decoding them.
            retired = host.layout.retired
            retired.retire(snap.old_start, snap.old_end - snap.old_start,
                           fresh.version)
            for stale in stale_cold:
                retired.retire(stale.offset, stale.length, fresh.version)
            # 5. Adopt the new epoch locally and release the lock.
            host.metadata = fresh
            host.layout.metadata = GlobalMetadata.unpack(fresh.pack())
            for cid in snap.member_ids:
                host.cache.invalidate(cid)
            host.observe_version(fresh.version)
            host.transport.write(host.layout.rkey, self._lock_addr(),
                                 _U64.pack(0))
        self.state = "done"
