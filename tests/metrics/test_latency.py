"""Latency breakdown arithmetic."""

from __future__ import annotations

import pytest

from repro.metrics.latency import LatencyBreakdown


def test_total_sums_buckets():
    breakdown = LatencyBreakdown(network_us=10.0, sub_hnsw_us=5.0,
                                 meta_hnsw_us=1.0)
    assert breakdown.total_us == pytest.approx(16.0)


def test_add_accumulates():
    left = LatencyBreakdown(1.0, 2.0, 3.0)
    left.add(LatencyBreakdown(10.0, 20.0, 30.0))
    assert left.network_us == pytest.approx(11.0)
    assert left.sub_hnsw_us == pytest.approx(22.0)
    assert left.meta_hnsw_us == pytest.approx(33.0)


def test_scaled_returns_copy():
    original = LatencyBreakdown(10.0, 20.0, 30.0)
    half = original.scaled(0.5)
    assert half.network_us == pytest.approx(5.0)
    assert original.network_us == pytest.approx(10.0)


def test_scaled_rejects_negative():
    with pytest.raises(ValueError):
        LatencyBreakdown().scaled(-1.0)


def test_as_dict_keys():
    data = LatencyBreakdown(1.0, 2.0, 3.0).as_dict()
    assert set(data) == {"network_us", "sub_hnsw_us", "meta_hnsw_us",
                         "total_us"}
    assert data["total_us"] == pytest.approx(6.0)


def test_str_mentions_buckets():
    text = str(LatencyBreakdown(1.0, 2.0, 3.0))
    assert "network" in text and "sub-HNSW" in text and "meta-HNSW" in text
