"""Binary serialization of sub-HNSW clusters and overflow records.

Wire format (little-endian throughout):

Cluster blob (§3.2: "its metadata, neighbor array for HNSW, and the
associated floating-point vectors"):

====================  =======================================================
section               contents
====================  =======================================================
header                magic ``b"DHN1"``, version u16, cluster_id u32,
                      num_nodes u32, dim u32, max_level i32, entry_point i32
labels                num_nodes x i64 (global dataset ids)
levels                num_nodes x i32 (top layer of each node)
adjacency             per node, per layer 0..level: count u32 + count x u32
vectors               num_nodes x dim x f32
====================  =======================================================

Overflow record (one dynamically inserted vector):

``global_id i64 | cluster_id u32 | vector dim x f32``

Records are fixed-size for a given dimensionality, so a slot index from a
remote fetch-and-add maps directly to a byte offset.  The top bit of
``cluster_id`` flags a **tombstone** (a logical delete of ``global_id``);
replaying a group's records in slot order therefore yields the current
live/dead state of every dynamic id, and deletes cost exactly one record
write like inserts do.

The codec is zero-copy on both sides: :func:`serialize_cluster` fills one
preallocated buffer through ``np.frombuffer`` views (no per-node
``struct.pack``, no ``bytes`` concatenation), and
:func:`deserialize_cluster` reads whole sections as array views, bulk-
loading the graph instead of re-adding nodes one at a time.  The original
node-by-node writer survives as :func:`serialize_cluster_reference` — the
equivalence oracle; both emit byte-identical ``DHN1`` blobs.
"""

from __future__ import annotations

import dataclasses
import struct

import numpy as np

from repro.errors import SerializationError
from repro.hnsw.index import HnswIndex
from repro.hnsw.params import HnswParams

__all__ = [
    "MAGIC",
    "OverflowRecord",
    "overflow_record_size",
    "pack_overflow_record",
    "pack_overflow_records",
    "unpack_overflow_records",
    "serialize_cluster",
    "serialize_cluster_reference",
    "serialized_cluster_size",
    "deserialize_cluster",
    "peek_cluster_geometry",
]

MAGIC = b"DHN1"
_FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sHHIIIii")  # magic, ver, pad, cid, n, dim, maxlvl, entry
_COUNT = struct.Struct("<I")
_OVERFLOW_HEAD = struct.Struct("<qI")  # global_id, cluster_id


#: Top bit of the on-wire cluster_id field marks a tombstone record.
_TOMBSTONE_BIT = 0x8000_0000


@dataclasses.dataclass(frozen=True)
class OverflowRecord:
    """A dynamic-data record in a group's overflow space.

    ``tombstone=False``: a newly inserted vector.
    ``tombstone=True``: a logical delete of ``global_id`` (the stored
    vector is the routing vector and is otherwise ignored).
    """

    global_id: int
    cluster_id: int
    vector: np.ndarray
    tombstone: bool = False


def overflow_record_size(dim: int) -> int:
    """Bytes per overflow record for vectors of ``dim`` components."""
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    return _OVERFLOW_HEAD.size + 4 * dim


def pack_overflow_record(record: OverflowRecord) -> bytes:
    """Serialize one overflow record."""
    vector = np.asarray(record.vector, dtype=np.float32).reshape(-1)
    wire_cid = record.cluster_id
    if record.tombstone:
        wire_cid |= _TOMBSTONE_BIT
    head = _OVERFLOW_HEAD.pack(record.global_id, wire_cid)
    return head + vector.tobytes()


def pack_overflow_records(records: "list[OverflowRecord]") -> bytes:
    """Serialize a run of overflow records into one contiguous buffer.

    The cutover's record migration writes surviving late arrivals into
    the fresh overflow area with a single WRITE, so the run must be one
    wire-ready byte string rather than per-record payloads.
    """
    return b"".join(pack_overflow_record(record) for record in records)


def unpack_overflow_records(blob: bytes, dim: int,
                            count: int) -> list[OverflowRecord]:
    """Deserialize the first ``count`` records from an overflow area."""
    record_size = overflow_record_size(dim)
    if len(blob) < count * record_size:
        raise SerializationError(
            f"overflow blob holds {len(blob)} B, need {count * record_size}")
    if count <= 0:
        return []
    # One structured view decodes every record at once; the vector block
    # is copied out in a single bulk operation so each record owns its
    # slice independent of the source buffer.
    wire = np.dtype([("global_id", "<i8"), ("cluster_id", "<u4"),
                     ("vector", "<f4", (dim,))])
    assert wire.itemsize == record_size
    rows = np.frombuffer(blob, dtype=wire, count=count)
    global_ids = rows["global_id"].tolist()
    wire_cids = rows["cluster_id"]
    vectors = np.array(rows["vector"], dtype=np.float32)
    cluster_ids = (wire_cids & np.uint32(~_TOMBSTONE_BIT
                                         & 0xFFFF_FFFF)).tolist()
    tombstones = ((wire_cids & np.uint32(_TOMBSTONE_BIT)) != 0).tolist()
    return [OverflowRecord(global_id, cluster_id, vectors[row],
                           tombstone=tombstone)
            for row, (global_id, cluster_id, tombstone)
            in enumerate(zip(global_ids, cluster_ids, tombstones))]


# ----------------------------------------------------------------------
def peek_cluster_geometry(blob: "bytes | memoryview"
                          ) -> tuple[int, int, int]:
    """Read ``(cluster_id, num_nodes, dim)`` from a blob's header.

    The labels section starts at ``_HEADER.size`` and the vector section
    occupies the last ``4 * num_nodes * dim`` bytes, so this is all a
    caller needs to view either section without a full deserialize (the
    cold-tier builder and the rerank read path both rely on it).
    """
    if len(blob) < _HEADER.size:
        raise SerializationError(
            f"blob of {len(blob)} B shorter than header {_HEADER.size} B")
    magic, version, _, cluster_id, num_nodes, dim, _, _ = (
        _HEADER.unpack_from(blob, 0))
    if magic != MAGIC:
        raise SerializationError(f"bad magic {magic!r}")
    if version != _FORMAT_VERSION:
        raise SerializationError(f"unsupported format version {version}")
    return cluster_id, num_nodes, dim


def cluster_label_section_offset() -> int:
    """Byte offset of the labels section inside a ``DHN1`` blob."""
    return _HEADER.size


def serialized_cluster_size(index: HnswIndex) -> int:
    """Exact byte size of ``serialize_cluster``'s output for ``index``.

    Cheap enough (one pass over the adjacency lists, no copying) that the
    layout planner can place every cluster before any blob exists.
    """
    graph = index.graph
    num_nodes = len(graph)
    adjacency_words = 0
    for layers in graph.adjacency:
        adjacency_words += len(layers)
        for layer in layers:
            adjacency_words += len(layer)
    return (_HEADER.size + 12 * num_nodes + 4 * adjacency_words
            + 4 * num_nodes * graph.dim)


def serialize_cluster(index: HnswIndex, cluster_id: int) -> bytes:
    """Serialize a sub-HNSW (graph + labels + vectors) into one blob.

    Zero-copy: the exact output size is computed up front and every
    section is written through an array view over one preallocated
    buffer.  Byte-identical to :func:`serialize_cluster_reference`.
    """
    graph = index.graph
    num_nodes = len(graph)
    entry = graph.entry_point if graph.entry_point is not None else -1
    adjacency = graph.adjacency

    adjacency_words = 0
    for layers in adjacency:
        adjacency_words += len(layers)
        for layer in layers:
            adjacency_words += len(layer)

    buffer = bytearray(_HEADER.size + 12 * num_nodes + 4 * adjacency_words
                       + 4 * num_nodes * graph.dim)
    _HEADER.pack_into(buffer, 0, MAGIC, _FORMAT_VERSION, 0, cluster_id,
                      num_nodes, graph.dim, graph.max_level, entry)
    offset = _HEADER.size

    labels_view = np.frombuffer(buffer, dtype=np.int64, count=num_nodes,
                                offset=offset)
    labels_view[:] = index.labels
    offset += 8 * num_nodes

    levels_view = np.frombuffer(buffer, dtype=np.int32, count=num_nodes,
                                offset=offset)
    levels_view[:] = [len(layers) - 1 for layers in adjacency]
    offset += 4 * num_nodes

    # Interleaved per-layer "count + ids" words flattened into one list,
    # then converted by a single array assignment.
    flat: list[int] = []
    append = flat.append
    extend = flat.extend
    for layers in adjacency:
        for layer in layers:
            append(len(layer))
            extend(layer)
    adjacency_view = np.frombuffer(buffer, dtype=np.uint32,
                                   count=adjacency_words, offset=offset)
    adjacency_view[:] = flat
    offset += 4 * adjacency_words

    vectors_view = np.frombuffer(buffer, dtype=np.float32,
                                 count=num_nodes * graph.dim, offset=offset)
    vectors_view[:] = graph.vectors.reshape(-1)
    return bytes(buffer)


def serialize_cluster_reference(index: HnswIndex, cluster_id: int) -> bytes:
    """Node-by-node ``struct``-based writer — the codec oracle.

    Kept for equivalence tests and benchmark baselines;
    :func:`serialize_cluster` must produce exactly these bytes.
    """
    graph = index.graph
    num_nodes = len(graph)
    entry = graph.entry_point if graph.entry_point is not None else -1
    parts = [_HEADER.pack(MAGIC, _FORMAT_VERSION, 0, cluster_id, num_nodes,
                          graph.dim, graph.max_level, entry)]
    parts.append(np.asarray(index.labels, dtype=np.int64).tobytes())
    levels = np.array([graph.level_of(node) for node in range(num_nodes)],
                      dtype=np.int32)
    parts.append(levels.tobytes())
    for node in range(num_nodes):
        for layer in graph.adjacency[node]:
            parts.append(_COUNT.pack(len(layer)))
            parts.append(np.asarray(layer, dtype=np.uint32).tobytes())
    parts.append(graph.vectors.astype(np.float32, copy=False).tobytes())
    return b"".join(parts)


def deserialize_cluster(blob: "bytes | memoryview",
                        params: HnswParams | None = None
                        ) -> tuple[HnswIndex, int]:
    """Rebuild a sub-HNSW from a blob; returns ``(index, cluster_id)``.

    The graph structure is restored verbatim — no re-insertion — so a
    deserialized cluster answers queries identically to the original.
    Zero-copy: ``blob`` may be a ``memoryview`` straight off a READ
    payload; the vector store becomes a frozen ``frombuffer`` view over
    it (adopted by the graph without copying), so the returned index
    aliases ``blob``'s memory and shares its lifetime.
    """
    if len(blob) < _HEADER.size:
        raise SerializationError(
            f"blob of {len(blob)} B shorter than header {_HEADER.size} B")
    magic, version, _, cluster_id, num_nodes, dim, max_level, entry = (
        _HEADER.unpack_from(blob, 0))
    if magic != MAGIC:
        raise SerializationError(f"bad magic {magic!r}")
    if version != _FORMAT_VERSION:
        raise SerializationError(f"unsupported format version {version}")
    if dim < 1 or dim > 1 << 20:
        raise SerializationError(f"implausible dimension {dim}")
    # These bytes arrive from remote memory — every section read must be
    # bounds-checked so corruption fails as SerializationError, never as
    # a stray ValueError/IndexError deep in numpy.
    offset = _HEADER.size

    def take(nbytes: int, what: str) -> int:
        nonlocal offset
        if nbytes < 0 or offset + nbytes > len(blob):
            raise SerializationError(
                f"truncated blob: {what} needs {nbytes} B at offset "
                f"{offset}, blob is {len(blob)} B")
        start = offset
        offset += nbytes
        return start

    labels = np.frombuffer(blob, dtype=np.int64, count=num_nodes,
                           offset=take(8 * num_nodes, "labels"))
    levels = np.frombuffer(blob, dtype=np.int32, count=num_nodes,
                           offset=take(4 * num_nodes, "levels"))
    if num_nodes and (levels < 0).any():
        raise SerializationError("negative node level")

    # Fail fast on corrupt levels: the adjacency section needs at least
    # one count word per layer, and the vectors follow it, so a levels
    # sum the remaining bytes cannot hold can never parse.
    remaining_words = (len(blob) - offset) // 4
    minimum_words = (int(levels.astype(np.int64).sum()) + num_nodes
                     + num_nodes * dim)
    if minimum_words > remaining_words:
        raise SerializationError(
            f"truncated blob: adjacency and vectors need at least "
            f"{4 * minimum_words} B at offset {offset}, blob is "
            f"{len(blob)} B")

    # The whole adjacency section is one u32 view walked per layer —
    # count lookup, slice, bounds check — instead of per-node struct
    # unpacking and per-id int conversion.
    words = np.frombuffer(blob, dtype=np.uint32, count=remaining_words,
                          offset=offset)
    adjacency: list[list[list[int]]] = []
    cursor = 0
    for node in range(num_nodes):
        layers: list[list[int]] = []
        for _ in range(int(levels[node]) + 1):
            if cursor >= remaining_words:
                raise SerializationError(
                    f"truncated blob: adjacency count of node {node} "
                    f"needs {_COUNT.size} B at offset "
                    f"{offset + 4 * cursor}, blob is {len(blob)} B")
            count = int(words[cursor])
            cursor += 1
            if cursor + count > remaining_words:
                raise SerializationError(
                    f"truncated blob: neighbours of node {node} need "
                    f"{4 * count} B at offset {offset + 4 * cursor}, "
                    f"blob is {len(blob)} B")
            neighbors = words[cursor:cursor + count]
            cursor += count
            if count and int(neighbors.max()) >= num_nodes:
                raise SerializationError(
                    f"node {node}: neighbour id out of range")
            layers.append(neighbors.tolist())
        adjacency.append(layers)
    offset += 4 * cursor

    vectors = np.frombuffer(
        blob, dtype=np.float32, count=num_nodes * dim,
        offset=take(4 * num_nodes * dim, "vectors")).reshape(num_nodes,
                                                             dim)
    # The view may sit over writable region memory (a zero-copy READ
    # payload); freeze it so the graph adopts it as a frozen store and
    # nothing downstream can scribble on the memory node through it.
    vectors.flags.writeable = False
    if num_nodes:
        if not -1 <= entry < num_nodes:
            raise SerializationError(
                f"entry point {entry} out of range for {num_nodes} nodes")
        if max_level != int(levels.max()):
            raise SerializationError(
                f"header max_level {max_level} != computed "
                f"{int(levels.max())}")
    elif entry != -1 or max_level != -1:
        raise SerializationError("empty cluster with non-empty header")

    index = HnswIndex(dim, params if params is not None else HnswParams())
    graph = index.graph
    if num_nodes:
        graph.bulk_load(vectors, adjacency, copy=False)
    graph.max_level = max_level
    graph.entry_point = entry if entry >= 0 else None
    index.labels = labels.tolist()
    return index, cluster_id
