"""Zero-copy invariants of the mmap-backed memory substrate.

The fetch path's contract: bytes registered on the memory node are never
duplicated on their way to a decoded index — READ payloads are region
views, ``np.frombuffer`` decodes in place, and the graph adopts the
resulting read-only store.  These tests pin that property with
``np.shares_memory`` from the registered region all the way to the served
vector arrays, and bound the allocations of a large fetch with
``tracemalloc``.
"""

from __future__ import annotations

import os
import tracemalloc

import numpy as np
import pytest

from repro.hnsw import HnswIndex, HnswParams
from repro.hnsw.csr import CsrGraph
from repro.layout.serializer import deserialize_cluster, serialize_cluster
from repro.rdma import CostModel, MemoryNode, QueuePair, ReadDescriptor, SimClock
from repro.transport.sim import SimRdmaTransport


@pytest.fixture()
def node() -> MemoryNode:
    return MemoryNode("zero-copy-mem")


def region_bytes(region) -> np.ndarray:
    """The registered region as a uint8 array view (no copy)."""
    return np.frombuffer(region.buffer, dtype=np.uint8)


def make_transport(node: MemoryNode) -> SimRdmaTransport:
    qp = QueuePair(node, SimClock(), CostModel())
    qp.connect()
    return SimRdmaTransport(qp)


def build_index(count: int, dim: int, seed: int = 0) -> HnswIndex:
    generator = np.random.default_rng(seed)
    index = HnswIndex(dim, HnswParams(m=6, ef_construction=30, seed=seed))
    index.add(generator.standard_normal((count, dim)).astype(np.float32),
              labels=list(range(count)))
    return index


class TestReadPayloadsAliasRegion:
    def test_read_returns_region_view(self, node):
        region = node.register(64)
        node.write(region.rkey, region.base_addr, b"payload")
        payload = node.read(region.rkey, region.base_addr, 7)
        assert isinstance(payload, memoryview)
        assert np.shares_memory(np.frombuffer(payload, dtype=np.uint8),
                                region_bytes(region))

    def test_transport_read_aliases_region(self, node):
        region = node.register(128)
        transport = make_transport(node)
        payload = transport.read(region.rkey, region.base_addr + 16, 32)
        assert np.shares_memory(np.frombuffer(payload, dtype=np.uint8),
                                region_bytes(region))

    def test_batch_and_async_payloads_alias_region(self, node):
        region = node.register(256)
        transport = make_transport(node)
        descriptors = [ReadDescriptor(region.rkey, region.base_addr + 32 * i,
                                      32) for i in range(4)]
        for payload in transport.read_batch(descriptors):
            assert np.shares_memory(np.frombuffer(payload, dtype=np.uint8),
                                    region_bytes(region))
        pending = transport.read_batch_async(descriptors)
        for payload in transport.poll(pending):
            assert np.shares_memory(np.frombuffer(payload, dtype=np.uint8),
                                    region_bytes(region))

    def test_payload_observes_later_writes(self, node):
        """Synchronous READ payloads are live views — one-sided semantics
        only freeze *in-flight async* batches, not returned sync views."""
        region = node.register(16)
        payload = node.read(region.rkey, region.base_addr, 4)
        node.write(region.rkey, region.base_addr, b"abcd")
        assert payload == b"abcd"


class TestWriteBufferProtocol:
    def test_write_accepts_numpy_memoryview_bytearray(self, node):
        region = node.register(64)
        array = np.arange(4, dtype=np.float32)
        assert node.write(region.rkey, region.base_addr, array) == 16
        assert node.write(region.rkey, region.base_addr + 16,
                          memoryview(b"viewed")) == 6
        assert node.write(region.rkey, region.base_addr + 32,
                          bytearray(b"mutable")) == 7
        assert node.read(region.rkey, region.base_addr, 16) == array.tobytes()
        assert node.read(region.rkey, region.base_addr + 16, 6) == b"viewed"
        assert node.read(region.rkey, region.base_addr + 32, 7) == b"mutable"

    def test_write_through_transport_from_array_slice(self, node):
        region = node.register(64)
        transport = make_transport(node)
        matrix = np.arange(16, dtype=np.float32).reshape(4, 4)
        transport.write(region.rkey, region.base_addr, matrix[1])
        assert (node.read(region.rkey, region.base_addr, 16)
                == matrix[1].tobytes())


class TestFileBackedRegions:
    def test_roundtrip_and_anonymous_equivalence(self, tmp_path):
        backed = MemoryNode("backed", backing_dir=tmp_path)
        region = backed.register(4096)
        payload = os.urandom(512)
        backed.write(region.rkey, region.base_addr + 64, payload)
        assert backed.read(region.rkey, region.base_addr + 64, 512) == payload

    def test_backing_file_is_unlinked(self, tmp_path):
        backed = MemoryNode("backed", backing_dir=tmp_path)
        backed.register(4096)
        # The mapping holds the inode; the directory entry must be gone so
        # regions never leak files past the process.
        assert list(tmp_path.iterdir()) == []


class TestSnapshotGuards:
    def test_overlapping_write_materializes_payload(self, node):
        region = node.register(64)
        node.write(region.rkey, region.base_addr, b"old!")
        payloads = [node.read(region.rkey, region.base_addr, 4)]
        node.guard_payloads([(region.rkey, 0, 4)], payloads)
        node.write(region.rkey, region.base_addr, b"new!")
        assert isinstance(payloads[0], bytes)
        assert payloads[0] == b"old!"

    def test_disjoint_write_keeps_view(self, node):
        region = node.register(64)
        payloads = [node.read(region.rkey, region.base_addr, 4)]
        guard = node.guard_payloads([(region.rkey, 0, 4)], payloads)
        node.write(region.rkey, region.base_addr + 32, b"far away")
        assert isinstance(payloads[0], memoryview)
        node.release_guard(guard)
        node.release_guard(guard)  # idempotent

    def test_released_guard_no_longer_copies(self, node):
        region = node.register(64)
        payloads = [node.read(region.rkey, region.base_addr, 4)]
        guard = node.guard_payloads([(region.rkey, 0, 4)], payloads)
        node.release_guard(guard)
        node.write(region.rkey, region.base_addr, b"live")
        assert isinstance(payloads[0], memoryview)
        assert payloads[0] == b"live"


class TestDecodeSharesRegionMemory:
    def test_region_to_decoded_arrays(self, node):
        """The tentpole invariant: region -> READ payload -> decoded
        vector store -> compiled CSR matrix, one buffer throughout."""
        index = build_index(150, 16, seed=4)
        blob = serialize_cluster(index, cluster_id=3)
        region = node.register(len(blob) + 64)
        node.write(region.rkey, region.base_addr, blob)
        transport = make_transport(node)

        payload = transport.read(region.rkey, region.base_addr, len(blob))
        restored, cid = deserialize_cluster(payload)
        assert cid == 3
        backing = region_bytes(region)
        vectors = restored.graph.vectors
        assert np.shares_memory(vectors, backing)
        assert not vectors.flags.writeable
        np.testing.assert_array_equal(vectors, index.graph.vectors)

        csr = CsrGraph.from_layered(restored.graph)
        assert np.shares_memory(csr.vectors, backing)

    def test_writable_graph_still_copied_into_csr(self):
        """A growable (writable) store must keep getting decoupled."""
        index = build_index(50, 8, seed=5)
        csr = CsrGraph.from_layered(index.graph)
        assert not np.shares_memory(csr.vectors, index.graph._vectors)

    def test_insert_after_adoption_migrates_storage(self, node):
        """add_node on an adopted read-only store must copy out first."""
        index = build_index(40, 8, seed=6)
        blob = serialize_cluster(index, cluster_id=0)
        region = node.register(len(blob))
        node.write(region.rkey, region.base_addr, blob)
        payload = node.read(region.rkey, region.base_addr, len(blob))
        restored, _ = deserialize_cluster(payload)
        before = np.array(restored.graph.vectors, copy=True)
        restored.add(np.zeros((1, 8), dtype=np.float32), labels=[40])
        assert restored.graph._vectors.flags.writeable
        assert not np.shares_memory(restored.graph.vectors,
                                    region_bytes(region))
        np.testing.assert_array_equal(restored.graph.vectors[:40], before)


class TestFetchAllocationBounded:
    def test_large_read_and_decode_allocate_o1(self, node):
        """Fetching a 32 MiB extent must allocate kilobytes, not another
        32 MiB — the payload and its NumPy decoding are views."""
        length = 32 * 2**20
        region = node.register(length)
        transport = make_transport(node)
        tracemalloc.start()
        baseline, _ = tracemalloc.get_traced_memory()
        payload = transport.read(region.rkey, region.base_addr, length)
        decoded = np.frombuffer(payload, dtype=np.float32)
        current, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert decoded.nbytes == length
        assert current - baseline < 64 * 1024
