"""IVF-Flat: the quantization-family ANN baseline (paper reference [14]).

An inverted-file index partitions the corpus around k-means centroids; a
query scans the ``nprobe`` nearest centroids' lists exhaustively.  It is
the standard non-graph comparator for HNSW-style indexes: cheaper to
build, no graph memory, but it must *scan* where HNSW *navigates*, so at
equal recall it evaluates far more distances on clustered data.

The benchmark ``benchmarks/test_baseline_ivf.py`` compares IVF-Flat with
the HNSW substrate at matched recall to justify the paper's choice of a
graph index (§2.1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.kmeans import kmeans
from repro.errors import ConfigError, EmptyIndexError
from repro.hnsw.distance import DistanceKernel, Metric

__all__ = ["IvfFlatIndex"]


class IvfFlatIndex:
    """Inverted-file index with exhaustive in-list scans."""

    def __init__(self, dim: int, num_lists: int,
                 metric: "str | Metric" = Metric.L2,
                 seed: int = 0) -> None:
        if dim < 1:
            raise ConfigError(f"dim must be >= 1, got {dim}")
        if num_lists < 1:
            raise ConfigError(f"num_lists must be >= 1, got {num_lists}")
        self.dim = dim
        self.num_lists = num_lists
        self.kernel = DistanceKernel(dim, metric)
        self.seed = seed
        self._centroids: np.ndarray | None = None
        self._list_vectors: list[np.ndarray] = []
        self._list_labels: list[np.ndarray] = []

    # ------------------------------------------------------------------
    @property
    def is_trained(self) -> bool:
        """Whether centroids exist."""
        return self._centroids is not None

    def __len__(self) -> int:
        return sum(len(labels) for labels in self._list_labels)

    def train(self, vectors: np.ndarray,
              labels: Sequence[int] | None = None) -> None:
        """Cluster the corpus and populate the inverted lists."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self.dim:
            raise ConfigError(
                f"expected dim {self.dim}, got {vectors.shape[1]}")
        if labels is None:
            labels = np.arange(vectors.shape[0], dtype=np.int64)
        else:
            labels = np.asarray(list(labels), dtype=np.int64)
            if len(labels) != vectors.shape[0]:
                raise ConfigError(
                    f"{vectors.shape[0]} vectors but {len(labels)} labels")
        rng = np.random.default_rng(self.seed)
        lists = min(self.num_lists, vectors.shape[0])
        result = kmeans(vectors, lists, rng, metric=self.kernel.metric)
        self._centroids = result.centroids
        self._list_vectors = []
        self._list_labels = []
        for cluster in range(lists):
            member_rows = np.flatnonzero(result.assignments == cluster)
            self._list_vectors.append(vectors[member_rows])
            self._list_labels.append(labels[member_rows])

    # ------------------------------------------------------------------
    def add(self, vector: np.ndarray, label: int) -> int:
        """Append one vector to its nearest centroid's list."""
        if not self.is_trained:
            raise EmptyIndexError("train the index before adding")
        vector = np.asarray(vector, dtype=np.float32).reshape(1, -1)
        assert self._centroids is not None
        target = int(np.argmin(self.kernel.many(vector[0],
                                                self._centroids)))
        self._list_vectors[target] = (
            np.vstack([self._list_vectors[target], vector])
            if len(self._list_vectors[target])
            else vector)
        self._list_labels[target] = np.append(self._list_labels[target],
                                              np.int64(label))
        return target

    def search(self, query: np.ndarray, k: int,
               nprobe: int = 4) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` by scanning the ``nprobe`` nearest lists."""
        if not self.is_trained or len(self) == 0:
            raise EmptyIndexError("search on an empty IVF index")
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        if nprobe < 1:
            raise ConfigError(f"nprobe must be >= 1, got {nprobe}")
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        assert self._centroids is not None
        centroid_dists = self.kernel.many(query, self._centroids)
        probes = np.argsort(centroid_dists)[:nprobe]
        candidates: list[tuple[float, int]] = []
        for list_id in probes:
            vectors = self._list_vectors[list_id]
            if len(vectors) == 0:
                continue
            dists = self.kernel.many(query, vectors)
            candidates.extend(
                zip(dists.tolist(),
                    self._list_labels[list_id].tolist()))
        candidates.sort()
        top = candidates[:k]
        return (np.array([label for _, label in top], dtype=np.int64),
                np.array([dist for dist, _ in top], dtype=np.float32))

    # ------------------------------------------------------------------
    def list_sizes(self) -> np.ndarray:
        """Population of each inverted list."""
        return np.array([len(labels) for labels in self._list_labels],
                        dtype=np.int64)

    def reset_compute_counter(self) -> int:
        """Zero the distance counter; returns the old value."""
        return self.kernel.reset_counter()

    @property
    def compute_count(self) -> int:
        """Distance evaluations since the last reset."""
        return self.kernel.num_evaluations
