"""Non-graph ANN baselines from the paper's background section (§2.1).

* :class:`~repro.baselines.ivf.IvfFlatIndex` — quantization family
  (reference [14], FAISS-style inverted file over k-means centroids);
* :class:`~repro.baselines.lsh.LshIndex` — hashing family (reference
  [7], random hyperplanes, multi-table, multiprobe);
* :class:`~repro.baselines.kdtree.KdTreeIndex` — tree family (reference
  [24], median-split k-d tree with best-first bounded search);
* :func:`~repro.baselines.kmeans.kmeans` — the Lloyd's/k-means++
  substrate behind IVF.

``benchmarks/test_baseline_ann.py`` pits them against the HNSW
substrate at matched recall to reproduce §2.1's claim that graph
indexes win at high dimension.
"""

from repro.baselines.ivf import IvfFlatIndex
from repro.baselines.kdtree import KdTreeIndex
from repro.baselines.kmeans import KMeansResult, kmeans, kmeans_plus_plus_init
from repro.baselines.lsh import LshIndex
from repro.baselines.pushdown import PushdownServer
from repro.baselines.vamana import VamanaIndex

__all__ = [
    "IvfFlatIndex",
    "KMeansResult",
    "KdTreeIndex",
    "LshIndex",
    "PushdownServer",
    "VamanaIndex",
    "kmeans",
    "kmeans_plus_plus_init",
]
