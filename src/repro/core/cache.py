"""The compute-instance sub-HNSW cluster cache (§3.3).

"Additionally, we retain the most recently loaded c sub-HNSWs for the next
batch.  If the required sub-HNSWs are already in the compute instance, they
do not need to be loaded again, further reducing data transfer overhead."

Capacity is a cluster count (the paper configures 10 % of all clusters).
Entries carry the metadata version and the overflow tail observed at load
time so staleness is detectable after inserts and rebuilds.

The cache is thread-safe: the serving engine's thread-pool executor looks
entries up from worker threads while the scheduler inserts fetched clusters,
so every operation (including the byte/counter bookkeeping) runs under one
re-entrant lock.  Accounting lives *inside* the cache: ``get`` counts hits
and misses, ``put`` counts the miss that caused the fetch (an insert of an
absent key) and any evictions — callers never poke the counters.
"""

from __future__ import annotations

import collections
import dataclasses
import threading

from repro.errors import ConfigError
from repro.hnsw.index import HnswIndex
from repro.layout.serializer import OverflowRecord

__all__ = ["CachedCluster", "ClusterCache"]


@dataclasses.dataclass
class CachedCluster:
    """A deserialized sub-HNSW plus the overflow records seen at load."""

    cluster_id: int
    index: HnswIndex
    overflow: list[OverflowRecord]
    overflow_tail: int
    metadata_version: int
    nbytes: int
    #: In-flight compute references.  The zero-copy decode path leaves
    #: ``index`` holding read-only views over remote region memory; a
    #: pinned entry is being searched right now, so the cache must not
    #: spill it (DRAM accounting would free memory still in use) and must
    #: :meth:`materialize` it before the backing extent can be rewritten.
    #: Mutated only under the owning cache's lock.
    pins: int = 0

    def materialize(self) -> bool:
        """Copy any region-aliasing vector views to private memory."""
        return self.index.materialize()


class ClusterCache:
    """Lock-guarded LRU cache of deserialized sub-HNSW clusters."""

    def __init__(self, capacity_clusters: int,
                 freq_halflife_us: float = 50_000.0) -> None:
        if capacity_clusters < 1:
            raise ConfigError(
                f"cache capacity must be >= 1, got {capacity_clusters}")
        if freq_halflife_us <= 0:
            raise ConfigError(
                f"freq halflife must be > 0, got {freq_halflife_us}")
        self.capacity_clusters = int(capacity_clusters)
        self.freq_halflife_us = float(freq_halflife_us)
        self._entries: collections.OrderedDict[int, CachedCluster] = (
            collections.OrderedDict())
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._cached_bytes = 0
        # EWMA access frequencies, keyed by cluster id.  Deliberately
        # covers non-resident clusters too: the tier store scores *cold*
        # clusters for promotion, so the signal must survive eviction.
        # Each value is (score, last_access_us); the score decays by
        # 2 ** (-elapsed / halflife) before each bump or read.
        self._freq: dict[int, tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # Counters (read-only: incremented inside get/put/invalidate)
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        """Lookups served from cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that went to remote memory (counted at ``get`` misses
        and at ``put`` inserts of absent keys — never both for one fetch:
        the refetch path opts out with ``count_miss=False``)."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Entries displaced by capacity pressure."""
        return self._evictions

    @property
    def invalidations(self) -> int:
        """Entries dropped as stale."""
        return self._invalidations

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, cluster_id: int) -> bool:
        with self._lock:
            return cluster_id in self._entries

    @property
    def cached_bytes(self) -> int:
        """Sum of cached entries' sizes (a running total, O(1))."""
        return self._cached_bytes

    def get(self, cluster_id: int) -> CachedCluster | None:
        """Look up a cluster, refreshing its recency; counts hit/miss."""
        with self._lock:
            entry = self._entries.get(cluster_id)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(cluster_id)
            self._hits += 1
            return entry

    def peek(self, cluster_id: int) -> CachedCluster | None:
        """Look up without touching recency or counters (planner use)."""
        with self._lock:
            return self._entries.get(cluster_id)

    # ------------------------------------------------------------------
    # EWMA access-frequency tracking (tier promotion/demotion signal)
    # ------------------------------------------------------------------
    def record_access(self, cluster_id: int, now_us: float,
                      weight: float = 1.0) -> float:
        """Bump ``cluster_id``'s EWMA access score at time ``now_us``.

        Separate from :meth:`get` recency/hit accounting: the tier store
        records *every* required cluster — resident or not — while
        ``get`` only sees hot lookups.  ``weight`` is how many queries
        of the batch demanded the cluster, so popularity (not mere
        presence in a batch) drives promotion.  Returns the updated
        score.
        """
        if weight <= 0:
            raise ConfigError(f"weight must be > 0, got {weight}")
        with self._lock:
            score, last = self._freq.get(cluster_id, (0.0, now_us))
            if now_us > last:
                score *= 2.0 ** (-(now_us - last) / self.freq_halflife_us)
            score += weight
            self._freq[cluster_id] = (score, max(now_us, last))
            return score

    def frequency(self, cluster_id: int, now_us: float) -> float:
        """Read ``cluster_id``'s EWMA score decayed to ``now_us``."""
        with self._lock:
            record = self._freq.get(cluster_id)
            if record is None:
                return 0.0
            score, last = record
            if now_us > last:
                score *= 2.0 ** (-(now_us - last) / self.freq_halflife_us)
            return score

    # ------------------------------------------------------------------
    # Pinning (in-flight compute protection)
    # ------------------------------------------------------------------
    def pin(self, entry: CachedCluster) -> None:
        """Mark ``entry`` as in use by compute: it will not be evicted,
        and invalidation will materialize it instead of leaving the
        searcher's zero-copy views over soon-to-be-rewritten memory."""
        with self._lock:
            entry.pins += 1

    def unpin(self, entry: CachedCluster) -> None:
        """Release one compute reference taken by :meth:`pin`."""
        with self._lock:
            if entry.pins <= 0:
                raise ValueError(
                    f"cluster {entry.cluster_id} unpinned more times than "
                    f"pinned")
            entry.pins -= 1

    def _pop_victim(self) -> CachedCluster | None:
        """Remove and return the least recently used *unpinned* entry.

        Must be called under the lock.  Returns None when every resident
        entry is pinned — the caller defers eviction (a transient
        capacity/budget overshoot) rather than spilling memory a worker
        thread is searching right now.
        """
        for cluster_id, entry in self._entries.items():
            if entry.pins == 0:
                del self._entries[cluster_id]
                self._evictions += 1
                self._cached_bytes -= entry.nbytes
                return entry
        return None

    def put(self, entry: CachedCluster,
            count_miss: bool = True) -> list[CachedCluster]:
        """Insert (or replace) an entry; returns any evicted entries.

        Inserting a key that was absent counts one miss — the fetch that
        produced ``entry`` went to remote memory.  Pass
        ``count_miss=False`` when a failed :meth:`get` already counted it
        (the evicted-between-planning-and-execution refetch path).
        Pinned entries are never chosen as victims; if everything
        resident is pinned the cache transiently exceeds capacity and
        sheds the excess on a later unpinned ``put``.
        """
        with self._lock:
            evicted = []
            previous = self._entries.pop(entry.cluster_id, None)
            if previous is not None:
                self._cached_bytes -= previous.nbytes
            elif count_miss:
                self._misses += 1
            while len(self._entries) >= self.capacity_clusters:
                victim = self._pop_victim()
                if victim is None:
                    break
                evicted.append(victim)
            self._entries[entry.cluster_id] = entry
            self._cached_bytes += entry.nbytes
            return evicted

    def pop_lru(self) -> CachedCluster | None:
        """Evict and return the least recently used unpinned entry.

        Returns None when the cache is empty *or* every entry is pinned
        by in-flight compute (callers distinguish via ``len(cache)``).
        """
        with self._lock:
            return self._pop_victim()

    def invalidate(self, cluster_id: int) -> bool:
        """Drop one entry (stale after a rebuild); True if it was cached.

        A pinned victim is materialized first: invalidation means the
        backing extent is being retired and may be rewritten, and the
        in-flight search holding the pin must keep seeing the bytes it
        started with.
        """
        with self._lock:
            victim = self._entries.pop(cluster_id, None)
            if victim is not None:
                if victim.pins > 0:
                    victim.materialize()
                self._cached_bytes -= victim.nbytes
                self._invalidations += 1
                return True
            return False

    def invalidate_all(self) -> None:
        """Drop everything (metadata version change)."""
        with self._lock:
            for victim in self._entries.values():
                if victim.pins > 0:
                    victim.materialize()
            self._invalidations += len(self._entries)
            self._entries.clear()
            self._cached_bytes = 0

    def materialize_all(self) -> int:
        """Privatize every resident entry's region-aliasing views.

        Called before remote memory the entries may alias is rewritten
        in place — replica repair, or simulated corruption in the chaos
        harness (on real hardware compute-local DRAM is naturally private;
        the simulator's zero-copy views are not).  Returns the number of
        entries that actually copied storage.
        """
        with self._lock:
            return sum(1 for entry in self._entries.values()
                       if entry.materialize())

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def counters(self) -> tuple[int, int, int]:
        """(hits, misses, evictions) read atomically under the lock."""
        with self._lock:
            return self._hits, self._misses, self._evictions
