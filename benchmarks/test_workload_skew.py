"""Traffic skew and the cluster cache (workload-generator bench).

The paper evaluates uniform query batches; production traffic is skewed
— and skew is where a 10 % cluster cache shines, because the hot
partitions stay resident across batches.  This bench drives the same
deployment with uniform and zipfian streams and compares steady-state
traffic.
"""

from __future__ import annotations

import numpy as np

from repro.core import Scheme
from repro.workloads import uniform_queries, zipfian_queries

from .conftest import emit_table

BATCHES = 4
#: Small batches: with a cache-sized working set per batch, skew decides
#: how much of the next batch the retained cache can serve.
BATCH_SIZE = 50
SKEW = 2.0


def run_stream(world, make_batch) -> tuple[float, float]:
    """Returns (steady-state network us/query, cache hit rate)."""
    client = world.client(Scheme.DHNSW)
    rng = np.random.default_rng(17)
    network_us = 0.0
    queries_served = 0
    for index in range(BATCHES):
        batch = client.search_batch(make_batch(rng), 10, ef_search=16)
        if index > 0:  # skip the cold batch
            network_us += batch.breakdown.network_us
            queries_served += batch.batch_size
    return network_us / queries_served, client.cache.hit_rate()


def test_workload_skew(sift_world, benchmark):
    world = sift_world
    corpus = world.dataset.vectors

    uniform_net, uniform_hits = run_stream(
        world, lambda rng: uniform_queries(corpus, BATCH_SIZE, rng,
                                           noise_std=1.0))
    zipf_net, zipf_hits = run_stream(
        world, lambda rng: zipfian_queries(corpus, BATCH_SIZE, rng,
                                           skew=SKEW, noise_std=1.0))

    header = (f"{'workload':<10} {'network_us_per_query':>21} "
              f"{'cache_hit_rate':>15}")
    rows = [
        f"{'uniform':<10} {uniform_net:>21.3f} {uniform_hits:>15.2%}",
        f"{'zipfian':<10} {zipf_net:>21.3f} {zipf_hits:>15.2%}",
    ]
    emit_table("workload_skew", header, rows)

    # Skewed traffic concentrates on few partitions, so steady-state
    # network traffic drops.  (The raw hit-*rate* is noisier: lookups
    # per batch also shrink under skew because fewer distinct clusters
    # are requested at all, so only the traffic claim is asserted.)
    assert zipf_net < uniform_net

    client = world.client(Scheme.DHNSW)
    rng = np.random.default_rng(18)
    benchmark.pedantic(
        lambda: client.search_batch(
            zipfian_queries(corpus, BATCH_SIZE, rng, skew=SKEW), 10,
            ef_search=16),
        rounds=1, iterations=1)
    benchmark.extra_info["uniform_net_us"] = uniform_net
    benchmark.extra_info["zipf_net_us"] = zipf_net
