"""Product quantization: codebooks, ADC, re-ranked search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import exact_knn
from repro.errors import ConfigError, EmptyIndexError
from repro.pq import PqCodebook, PqRerankIndex


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(0)
    data = rng.standard_normal((1500, 16)).astype(np.float32)
    queries = rng.standard_normal((20, 16)).astype(np.float32)
    return data, queries, exact_knn(data, queries, 10)


@pytest.fixture(scope="module")
def codebook(corpus):
    data, _, _ = corpus
    book = PqCodebook(16, num_subspaces=4, bits=6, seed=1)
    book.train(data)
    return book


class TestCodebook:
    def test_construction_validation(self):
        with pytest.raises(ConfigError, match="divide"):
            PqCodebook(10, num_subspaces=3)
        with pytest.raises(ConfigError, match="bits"):
            PqCodebook(8, num_subspaces=2, bits=9)

    def test_untrained_rejects_encode(self):
        book = PqCodebook(8, num_subspaces=2, bits=4)
        with pytest.raises(ConfigError, match="not trained"):
            book.encode(np.zeros((1, 8), dtype=np.float32))

    def test_training_sample_too_small(self):
        book = PqCodebook(8, num_subspaces=2, bits=8)
        with pytest.raises(ConfigError, match="training"):
            book.train(np.zeros((10, 8), dtype=np.float32))

    def test_code_shape_and_range(self, codebook, corpus):
        data, _, _ = corpus
        codes = codebook.encode(data[:50])
        assert codes.shape == (50, 4)
        assert codes.dtype == np.uint8
        assert codes.max() < codebook.num_centroids

    def test_code_bytes(self, codebook):
        assert codebook.code_bytes == 4  # vs 64 B of float32

    def test_reconstruction_beats_zero_baseline(self, codebook, corpus):
        data, _, _ = corpus
        error = codebook.quantization_error(data[:200])
        zero_error = float((data[:200] ** 2).sum(axis=1).mean())
        assert 0 < error < zero_error / 2

    def test_more_subspaces_less_error(self, corpus):
        data, _, _ = corpus
        coarse = PqCodebook(16, num_subspaces=2, bits=6, seed=2)
        fine = PqCodebook(16, num_subspaces=8, bits=6, seed=2)
        coarse.train(data)
        fine.train(data)
        assert (fine.quantization_error(data[:200])
                < coarse.quantization_error(data[:200]))

    def test_decode_encode_fixed_point(self, codebook, corpus):
        """Decoding then re-encoding must be a fixed point: centroids
        quantize to themselves."""
        data, _, _ = corpus
        codes = codebook.encode(data[:30])
        recoded = codebook.encode(codebook.decode(codes))
        np.testing.assert_array_equal(codes, recoded)


class TestAdc:
    def test_adc_matches_distance_to_reconstruction(self, codebook,
                                                    corpus):
        data, queries, _ = corpus
        codes = codebook.encode(data[:100])
        reconstructed = codebook.decode(codes)
        adc = codebook.adc_distances(queries[0], codes)
        from repro.hnsw.distance import DistanceKernel
        exact = DistanceKernel(16).many(queries[0], reconstructed)
        np.testing.assert_allclose(adc, exact, rtol=1e-3, atol=1e-2)

    def test_adc_table_shape(self, codebook, corpus):
        _, queries, _ = corpus
        tables = codebook.adc_tables(queries[0])
        assert tables.shape == (4, codebook.num_centroids)
        assert (tables >= 0).all()


class TestPqRerankIndex:
    @pytest.fixture(scope="class")
    def index(self, codebook, corpus):
        data, _, _ = corpus
        built = PqRerankIndex(codebook)
        built.add(data)
        return built

    def test_requires_trained_codebook(self):
        with pytest.raises(ConfigError):
            PqRerankIndex(PqCodebook(8, num_subspaces=2, bits=4))

    def test_reranked_recall_beats_pure_adc(self, index, corpus):
        _, queries, truth = corpus

        def recall(rerank):
            hits = 0
            for row, query in enumerate(queries):
                labels, _ = index.search(query, 10, rerank=rerank)
                hits += len(set(labels.tolist())
                            & set(truth[row].tolist()))
            return hits / 200

        assert recall(100) > recall(0)
        assert recall(100) >= 0.85

    def test_compression_ratio(self, index):
        # 4 code bytes vs 64 float bytes per vector: 16x.
        assert index.full_bytes / index.compressed_bytes == 16.0

    def test_rerank_zero_uses_no_exact_distances(self, index, corpus):
        _, queries, _ = corpus
        index.reset_compute_counter()
        index.search(queries[0], 5, rerank=0)
        assert index.compute_count == 0

    def test_rerank_bounds_exact_work(self, index, corpus):
        _, queries, _ = corpus
        index.reset_compute_counter()
        index.search(queries[0], 5, rerank=37)
        assert index.compute_count == 37

    def test_empty_index(self, codebook):
        with pytest.raises(EmptyIndexError):
            PqRerankIndex(codebook).search(np.zeros(16), 1)

    def test_custom_labels(self, codebook, corpus):
        data, _, _ = corpus
        built = PqRerankIndex(codebook)
        built.add(data[:10], labels=range(700, 710))
        labels, _ = built.search(data[3], 1)
        assert labels[0] == 703
