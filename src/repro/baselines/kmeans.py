"""Lloyd's k-means with k-means++ seeding, built on counted kernels.

The quantization-based indexes the paper cites (reference [14], FAISS)
partition space with k-means centroids; this from-scratch implementation
backs the IVF-Flat baseline in :mod:`repro.baselines.ivf` and is usable
on its own.  All distance work goes through
:class:`~repro.hnsw.distance.DistanceKernel`, so k-means compute is
accountable in simulated time like everything else.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigError
from repro.hnsw.distance import DistanceKernel, Metric

__all__ = ["KMeansResult", "kmeans", "kmeans_plus_plus_init"]


@dataclasses.dataclass(frozen=True)
class KMeansResult:
    """Converged clustering: centroids, assignments, quality, effort."""

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    iterations: int
    converged: bool


def kmeans_plus_plus_init(vectors: np.ndarray, k: int,
                          rng: np.random.Generator,
                          kernel: DistanceKernel) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportional to
    squared distance from the chosen set."""
    count = vectors.shape[0]
    first = int(rng.integers(0, count))
    centroids = [vectors[first]]
    closest_sq = kernel.many(vectors[first], vectors)
    for _ in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0.0:
            # All remaining points coincide with a centroid; pick any.
            pick = int(rng.integers(0, count))
        else:
            pick = int(rng.choice(count, p=closest_sq / total))
        centroids.append(vectors[pick])
        closest_sq = np.minimum(closest_sq,
                                kernel.many(vectors[pick], vectors))
    return np.stack(centroids)


def kmeans(vectors: np.ndarray, k: int, rng: np.random.Generator,
           max_iterations: int = 25, tolerance: float = 1e-4,
           metric: "str | Metric" = Metric.L2) -> KMeansResult:
    """Cluster ``vectors`` into ``k`` groups with Lloyd's algorithm.

    Empty clusters are reseeded from the point farthest from its
    centroid, so the result always has ``k`` non-degenerate centroids
    (assuming at least ``k`` distinct points).
    """
    vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    if vectors.shape[0] < k:
        raise ConfigError(
            f"cannot form {k} clusters from {vectors.shape[0]} points")
    if max_iterations < 1:
        raise ConfigError(
            f"max_iterations must be >= 1, got {max_iterations}")

    kernel = DistanceKernel(vectors.shape[1], metric)
    centroids = kmeans_plus_plus_init(vectors, k, rng, kernel)
    assignments = np.zeros(vectors.shape[0], dtype=np.int64)
    previous_inertia = np.inf
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        dists = kernel.cross(vectors, centroids)
        assignments = np.argmin(dists, axis=1)
        inertia = float(np.take_along_axis(
            dists, assignments[:, None], axis=1).sum())

        fresh = np.empty_like(centroids)
        for cluster in range(k):
            members = vectors[assignments == cluster]
            if len(members) == 0:
                # Reseed from the globally worst-fit point.
                worst = int(np.argmax(np.take_along_axis(
                    dists, assignments[:, None], axis=1)))
                fresh[cluster] = vectors[worst]
            else:
                fresh[cluster] = members.mean(axis=0)
        centroids = fresh

        if (np.isfinite(previous_inertia)
                and previous_inertia - inertia
                <= tolerance * max(previous_inertia, 1e-12)):
            converged = True
            break
        previous_inertia = inertia

    dists = kernel.cross(vectors, centroids)
    assignments = np.argmin(dists, axis=1)
    inertia = float(np.take_along_axis(dists, assignments[:, None],
                                       axis=1).sum())
    return KMeansResult(centroids=centroids, assignments=assignments,
                        inertia=inertia, iterations=iterations,
                        converged=converged)
