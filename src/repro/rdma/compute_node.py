"""The compute instance: CPU-rich, DRAM-poor.

A :class:`ComputeNode` models one of the paper's compute instances (§4
carves each server's 144 hyperthreads into 8 such instances).  It owns a
queue pair to the memory node, a simulated clock, and a bounded DRAM budget
that the d-HNSW engine spends on the cached meta-HNSW and the sub-HNSW
cluster cache.

Compute time is charged explicitly via :meth:`charge_compute`, using the
cost model's per-distance pricing, and tracked separately from network time
so Tables 1/2's three-way breakdown can be regenerated.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.rdma.clock import SimClock
from repro.rdma.memory_node import MemoryNode
from repro.rdma.network import CostModel
from repro.rdma.qp import QueuePair
from repro.rdma.stats import RdmaStats

__all__ = ["ComputeNode"]


class ComputeNode:
    """One compute instance connected to the disaggregated memory pool."""

    def __init__(self, memory_node: MemoryNode, cost_model: CostModel,
                 dram_budget_bytes: int, name: str = "compute0",
                 clock: SimClock | None = None) -> None:
        if dram_budget_bytes <= 0:
            raise ConfigError(
                f"dram_budget_bytes must be positive, got {dram_budget_bytes}")
        self.name = name
        self.cost_model = cost_model
        self.clock = clock if clock is not None else SimClock()
        self.stats = RdmaStats()
        self.qp = QueuePair(memory_node, self.clock, cost_model, self.stats)
        self.qp.connect()
        self.dram_budget_bytes = int(dram_budget_bytes)
        self._dram_used_bytes = 0
        self.compute_time_us = 0.0
        self.wall_compute_s = 0.0

    # ------------------------------------------------------------------
    # DRAM accounting
    # ------------------------------------------------------------------
    @property
    def dram_used_bytes(self) -> int:
        """Bytes of the DRAM budget currently reserved."""
        return self._dram_used_bytes

    @property
    def dram_free_bytes(self) -> int:
        """Remaining DRAM budget."""
        return self.dram_budget_bytes - self._dram_used_bytes

    def reserve_dram(self, nbytes: int, force: bool = False) -> bool:
        """Reserve ``nbytes`` of cache DRAM; False if it would overflow.

        ``force=True`` reserves past the budget — the cache uses it to
        defer eviction of pinned entries rather than free memory that a
        worker thread is still searching (``dram_used_bytes`` then
        honestly reports the overshoot).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if (not force
                and self._dram_used_bytes + nbytes > self.dram_budget_bytes):
            return False
        self._dram_used_bytes += nbytes
        return True

    def release_dram(self, nbytes: int) -> None:
        """Return ``nbytes`` to the budget."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes > self._dram_used_bytes:
            raise ValueError(
                f"releasing {nbytes} B but only {self._dram_used_bytes} B "
                f"are reserved")
        self._dram_used_bytes -= nbytes

    # ------------------------------------------------------------------
    # Compute-time accounting
    # ------------------------------------------------------------------
    def charge_compute(self, num_distances: int, dim: int) -> float:
        """Charge search compute (distance evaluations) to the clock.

        Returns the simulated microseconds charged.
        """
        elapsed = self.cost_model.compute_us(num_distances, dim)
        self.clock.advance(elapsed)
        self.compute_time_us += elapsed
        return elapsed

    def charge_time(self, elapsed_us: float) -> float:
        """Charge arbitrary local CPU time (e.g. blob deserialization)."""
        self.clock.advance(elapsed_us)
        self.compute_time_us += elapsed_us
        return elapsed_us

    def record_wall_compute(self, seconds: float) -> None:
        """Accumulate *measured* wall-clock seconds of the sub-HNSW compute
        phase (executor scaling metric; separate from simulated time)."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self.wall_compute_s += seconds

    def __repr__(self) -> str:
        return (f"ComputeNode({self.name!r}, "
                f"dram={self._dram_used_bytes}/{self.dram_budget_bytes}B)")
