"""Deployment topology: memory pool + compute pool + load balancer."""

from repro.cluster.deployment import Deployment
from repro.cluster.load_balancer import ClusterBatchResult, LoadBalancer
from repro.cluster.sharding import ShardedDeployment

__all__ = ["ClusterBatchResult", "Deployment", "LoadBalancer",
           "ShardedDeployment"]
