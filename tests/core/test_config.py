"""DHnswConfig validation and derived quantities."""

from __future__ import annotations

import pytest

from repro.core.config import DHnswConfig
from repro.errors import ConfigError
from repro.hnsw.params import HnswParams


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("num_representatives", 0),
        ("nprobe", 0),
        ("ef_meta", 0),
        ("cache_fraction", 0.0),
        ("cache_fraction", 1.5),
        ("batch_size", 0),
        ("overflow_capacity_records", -1),
        ("region_headroom", 0.5),
    ])
    def test_out_of_range_rejected(self, field, value):
        with pytest.raises(ConfigError):
            DHnswConfig(**{field: value})

    def test_meta_params_must_be_three_layered(self):
        with pytest.raises(ConfigError, match="three-layer"):
            DHnswConfig(meta_params=HnswParams(m=8, max_level=4))

    def test_defaults_valid(self):
        config = DHnswConfig()
        assert config.meta_params.max_level == 2


class TestDerivedRepresentatives:
    def test_paper_ratio_preserved(self):
        # 300 corpus vectors per representative, as 500 reps : 1M ratio
        # (order of magnitude).
        assert DHnswConfig().derived_num_representatives(30_000) == 100

    def test_floor_of_four(self):
        assert DHnswConfig().derived_num_representatives(50) == 4

    def test_cap_of_500(self):
        assert DHnswConfig().derived_num_representatives(10**6) == 500

    def test_explicit_value_wins(self):
        config = DHnswConfig(num_representatives=42)
        assert config.derived_num_representatives(10**6) == 42

    def test_explicit_value_clipped_to_corpus(self):
        config = DHnswConfig(num_representatives=100)
        assert config.derived_num_representatives(30) == 30

    def test_invalid_corpus_size(self):
        with pytest.raises(ConfigError):
            DHnswConfig().derived_num_representatives(0)


class TestCacheCapacity:
    def test_ten_percent_default(self):
        assert DHnswConfig().cache_capacity_clusters(500) == 50

    def test_minimum_one(self):
        assert DHnswConfig().cache_capacity_clusters(3) == 1

    def test_custom_fraction(self):
        config = DHnswConfig(cache_fraction=0.5)
        assert config.cache_capacity_clusters(10) == 5

    def test_invalid_cluster_count(self):
        with pytest.raises(ConfigError):
            DHnswConfig().cache_capacity_clusters(0)


def test_replace_round_trips():
    config = DHnswConfig(nprobe=2)
    changed = config.replace(nprobe=8)
    assert changed.nprobe == 8
    assert config.nprobe == 2


class TestEfSearchDefault:
    def test_none_keeps_two_k_rule(self):
        assert DHnswConfig().ef_search_default is None

    def test_valid_value_accepted(self):
        assert DHnswConfig(ef_search_default=64).ef_search_default == 64

    @pytest.mark.parametrize("bad", [0, -5])
    def test_invalid_value_rejected(self, bad):
        with pytest.raises(ConfigError, match="ef_search_default"):
            DHnswConfig(ef_search_default=bad)


class TestDramPlanValidation:
    def test_adequate_plan_passes(self):
        DHnswConfig().validate_dram_plan(
            capacity_clusters=4, meta_bytes=1000,
            max_extent_bytes=5000, dram_budget_bytes=50_000)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError, match="cache capacity"):
            DHnswConfig().validate_dram_plan(
                capacity_clusters=0, meta_bytes=0,
                max_extent_bytes=100, dram_budget_bytes=1000)

    def test_budget_smaller_than_largest_extent_rejected(self):
        config = DHnswConfig(cache_fraction=0.05)
        with pytest.raises(ConfigError) as exc:
            config.validate_dram_plan(
                capacity_clusters=1, meta_bytes=9_000,
                max_extent_bytes=5_000, dram_budget_bytes=10_000)
        # The message must be actionable: name the knobs to turn.
        assert "cache_fraction" in str(exc.value)
        assert "num_representatives" in str(exc.value)

    def test_zero_extent_always_fits(self):
        DHnswConfig().validate_dram_plan(
            capacity_clusters=1, meta_bytes=100,
            max_extent_bytes=0, dram_budget_bytes=100)
