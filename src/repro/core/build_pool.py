"""Process-pool fan-out for independent construction tasks.

The paper's §3.1 partitioning makes every sub-HNSW cluster a pure
function of its own members and parameters, so building (and rebuilding)
clusters is embarrassingly parallel.  :class:`BuildPool` is the one place
that owns a ``ProcessPoolExecutor`` for that fan-out:

* ``workers == 0`` (the default) runs tasks lazily in-process — no
  executor, no pickling, and results stream one at a time;
* ``workers >= 1`` spawns that many worker processes and maps tasks over
  them.

**Determinism contract**: a task function handed to :meth:`map` must be a
pure, top-level (picklable) function of its argument — no shared state,
no ambient randomness.  Then the result sequence is identical for every
worker count, because ``map`` preserves task order and each task's output
depends only on its input.  The d-HNSW build tasks satisfy this by
deriving each cluster's seed from the root seed + cluster id.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Iterable, Iterator, TypeVar

from repro.errors import ConfigError

__all__ = ["BuildPool"]

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


class BuildPool:
    """Context manager owning an optional process pool for build fan-out."""

    def __init__(self, workers: int = 0) -> None:
        if workers < 0:
            raise ConfigError(f"workers must be >= 0, got {workers}")
        self.workers = int(workers)
        self._executor: concurrent.futures.ProcessPoolExecutor | None = None

    def __enter__(self) -> "BuildPool":
        if self.workers > 0:
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def map(self, task_fn: Callable[[_Task], _Result],
            tasks: Iterable[_Task]) -> Iterator[_Result]:
        """Apply ``task_fn`` to every task, results in task order.

        In-process mode returns a lazy generator (a task runs only when
        its result is consumed — the streaming path); pool mode submits
        everything and yields results as the ordered map completes.
        """
        if self._executor is None:
            return (task_fn(task) for task in tasks)
        task_list = list(tasks)
        chunksize = max(1, len(task_list) // (self.workers * 4))
        return self._executor.map(task_fn, task_list, chunksize=chunksize)
