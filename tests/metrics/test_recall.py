"""Recall@k measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.recall import per_query_recall, recall_at_k

GT = np.array([[0, 1, 2], [3, 4, 5]])


def test_perfect_recall():
    assert recall_at_k([[0, 1, 2], [3, 4, 5]], GT, 3) == 1.0


def test_order_within_topk_irrelevant():
    assert recall_at_k([[2, 0, 1], [5, 3, 4]], GT, 3) == 1.0


def test_partial_recall():
    result = recall_at_k([[0, 9, 9], [3, 4, 9]], GT, 3)
    assert result == pytest.approx((1 / 3 + 2 / 3) / 2)


def test_zero_recall():
    assert recall_at_k([[7, 8, 9], [7, 8, 9]], GT, 3) == 0.0


def test_k_smaller_than_gt_depth():
    # Only the first k columns of ground truth count.
    assert recall_at_k([[0], [3]], GT, 1) == 1.0
    assert recall_at_k([[1], [4]], GT, 1) == 0.0


def test_short_result_lists_penalized():
    result = per_query_recall([[0], [3, 4, 5]], GT, 3)
    assert result[0] == pytest.approx(1 / 3)
    assert result[1] == 1.0


def test_extra_results_beyond_k_ignored():
    assert recall_at_k([[0, 1, 2, 9, 9], [3, 4, 5, 9, 9]], GT, 3) == 1.0


def test_count_mismatch_rejected():
    with pytest.raises(ValueError, match="result lists"):
        recall_at_k([[0]], GT, 1)


def test_k_deeper_than_gt_rejected():
    with pytest.raises(ValueError, match="depth"):
        recall_at_k([[0], [3]], GT, 5)


def test_k_validation():
    with pytest.raises(ValueError):
        recall_at_k([[0], [3]], GT, 0)
