"""Front-door benchmark: dynamic batching vs per-query dispatch.

The front door's claim is that coalescing independently arriving
single-query requests into waves (doorbell batching + cross-query
cluster dedup in the engine) buys steady-state throughput without
touching answers.  This harness runs one arrival sequence through two
front doors over the same build —

* ``batched``   — ``max_batch=64``, ``max_wait_us=2000`` (the default
  operating point), and
* ``per_query`` — ``max_batch=1``, ``max_wait_us=0`` (every request
  dispatches alone, the pre-front-door serving model)

— plus a moderate-rate steady scenario, and asserts the acceptance
criteria of the front-door PR:

* saturation throughput of ``batched`` is at least 2x ``per_query``
  at identical recall (answers are bit-identical, so recall is too);
* zero wrong answers: every front-door outcome equals a direct
  ``search_batch`` of the same queries, bit for bit;
* at the steady operating point, p99 queue delay stays within the
  ``max_wait_us`` budget;
* running the steady scenario twice replays the identical schedule
  and latency histogram (simulated time: same seed ⇒ same numbers).

Any violated criterion exits non-zero, so the CI smoke job doubles as a
regression gate.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_frontdoor.py        # full
    PYTHONPATH=src python benchmarks/perf/bench_frontdoor.py --ci   # CI

Writes ``benchmarks/perf/BENCH_frontdoor.json`` (``--output`` overrides).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

import numpy as np

from repro.cluster import Deployment
from repro.core import DHnswConfig
from repro.datasets import sift_like
from repro.frontdoor import (FrontDoor, FrontDoorConfig, make_requests,
                             poisson_arrivals)
from repro.metrics import recall_at_k

DEFAULT_OUTPUT = pathlib.Path(__file__).parent / "BENCH_frontdoor.json"

SCALES = {
    "full": dict(num_vectors=20000, num_queries=256, num_clusters=100,
                 steady_requests=1500, saturation_requests=768),
    "quick": dict(num_vectors=2000, num_queries=64, num_clusters=20,
                  steady_requests=400, saturation_requests=256),
}

#: The steady operating point: moderate offered rate, default knobs.
STEADY_RATE_QPS = 2000.0
#: Saturation offered rate: far beyond either door's capacity, so
#: measured throughput is service capacity, not the arrival process.
SATURATION_RATE_QPS = 100_000.0

BATCHED = FrontDoorConfig(max_wait_us=2000.0, max_batch=64)
PER_QUERY = FrontDoorConfig(max_wait_us=0.0, max_batch=1)

K = 10
EF_SEARCH = 32
TENANTS = ("alpha", "beta", "gamma")


def check(condition: bool, what: str) -> None:
    if not condition:
        raise SystemExit(f"ACCEPTANCE FAILURE: {what}")


def fresh_door(deployment, config, name: str) -> FrontDoor:
    client = deployment.make_client(deployment.client().scheme, name=name)
    return FrontDoor(client, config)


def run_door(deployment, config, name: str, requests):
    """One load run on a fresh client; returns (section, LoadReport)."""
    door = fresh_door(deployment, config, name)
    wall_start = time.perf_counter()
    report = door.run(requests)
    wall = time.perf_counter() - wall_start
    queue = report.queue_delay_percentiles()
    latency = report.latency_percentiles()
    section = {
        "max_wait_us": config.max_wait_us,
        "max_batch": config.max_batch,
        "offered": report.offered,
        "served": report.served,
        "waves": len(report.waves),
        "mean_occupancy": round(report.mean_occupancy, 2),
        "max_occupancy": report.max_occupancy,
        "throughput_qps": round(report.throughput_qps, 1),
        "queue_delay_us": {key: round(value, 1)
                           for key, value in queue.items()},
        "latency_us": {key: round(value, 1)
                       for key, value in latency.items()},
        "clusters_fetched": sum(w.clusters_fetched for w in report.waves),
        "harness_wall_seconds": round(wall, 2),
    }
    return section, report


def measure_recall(report, dataset, k: int) -> float:
    """Recall@k of a load report against the dataset's ground truth.

    ``make_requests`` consumes query rows cyclically, so outcome *i*
    answers ``queries[i % num_queries]``.
    """
    num_queries = len(dataset.queries)
    ids = np.stack([outcome.ids for outcome in report.outcomes])
    truth = np.stack([dataset.ground_truth[i % num_queries]
                      for i in range(len(report.outcomes))])
    return float(recall_at_k(ids, truth, k))


def assert_bit_identity(deployment, report, requests) -> None:
    oracle = deployment.make_client(deployment.client().scheme,
                                    name="oracle")
    queries = np.stack([r.query for r in requests])
    direct = oracle.search_batch(queries, K, ef_search=EF_SEARCH)
    for outcome, result in zip(report.outcomes, direct.results):
        check(np.array_equal(outcome.ids, result.ids)
              and np.array_equal(outcome.distances, result.distances),
              f"request #{outcome.request.request_id} differs from a "
              f"direct search_batch — coalescing changed an answer")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--ci", "--quick", dest="quick",
                        action="store_true",
                        help="CI-sized run (small build, fewer requests)")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    mode = "quick" if args.quick else "full"
    scale = SCALES[mode]

    build_start = time.perf_counter()
    dataset = sift_like(num_vectors=scale["num_vectors"],
                        num_queries=scale["num_queries"],
                        num_clusters=scale["num_clusters"],
                        gt_k=K, seed=42)
    config = DHnswConfig(nprobe=4, ef_meta=32, cache_fraction=0.10,
                         batch_size=64, overflow_capacity_records=64,
                         seed=42)
    deployment = Deployment(dataset.vectors, config,
                            simulate_link_contention=False)
    build_seconds = time.perf_counter() - build_start

    rng = np.random.default_rng(7)
    steady_requests = make_requests(
        poisson_arrivals(STEADY_RATE_QPS, scale["steady_requests"], rng),
        dataset.queries, k=K, slo_us=1e9, rng=rng, tenants=TENANTS,
        ef_search=EF_SEARCH)
    saturation_requests = make_requests(
        poisson_arrivals(SATURATION_RATE_QPS,
                         scale["saturation_requests"], rng),
        dataset.queries, k=K, slo_us=1e9, rng=rng, tenants=TENANTS,
        ef_search=EF_SEARCH)

    sections = {}

    # -- steady state: latency budget + determinism + bit identity -------
    sections["steady"], steady = run_door(
        deployment, BATCHED, "steady", steady_requests)
    _, steady_replay = run_door(
        deployment, BATCHED, "steady-replay", steady_requests)

    check(steady.served == steady.offered,
          "steady scenario shed requests — lower the offered rate")
    p99 = steady.queue_delay_percentiles()["p99"]
    check(p99 <= BATCHED.max_wait_us * (1 + 1e-9),
          f"steady p99 queue delay {p99:.1f}us exceeds the "
          f"{BATCHED.max_wait_us:.0f}us wait budget")
    check(steady.schedule_signature() == steady_replay.schedule_signature(),
          "same-seed steady runs produced different schedules")
    check(steady.latency_histogram() == steady_replay.latency_histogram(),
          "same-seed steady runs produced different latency histograms")
    assert_bit_identity(deployment, steady, steady_requests)

    # -- saturation: batched vs per-query throughput ---------------------
    sections["saturation_batched"], saturated = run_door(
        deployment, BATCHED, "saturated", saturation_requests)
    sections["saturation_per_query"], per_query = run_door(
        deployment, PER_QUERY, "per-query", saturation_requests)

    check(saturated.served == per_query.served == len(saturation_requests),
          "saturation scenario shed requests")
    assert_bit_identity(deployment, saturated, saturation_requests)
    recall_batched = measure_recall(saturated, dataset, K)
    recall_per_query = measure_recall(per_query, dataset, K)
    check(recall_batched == recall_per_query,
          f"recall diverged: batched {recall_batched:.4f} vs per-query "
          f"{recall_per_query:.4f}")
    speedup = (saturated.throughput_qps / per_query.throughput_qps
               if per_query.throughput_qps > 0 else float("inf"))
    check(speedup >= 2.0,
          f"batched door gave only {speedup:.2f}x the per-query "
          f"throughput (gate: >= 2x at equal recall)")

    acceptance = {
        "steady_p99_queue_delay_us": round(p99, 1),
        "steady_wait_budget_us": BATCHED.max_wait_us,
        "throughput_speedup_vs_per_query": round(speedup, 2),
        "recall_at_10": round(recall_batched, 4),
        "bit_identical": True,
        "schedule_replay": True,
    }
    report = {
        "benchmark": "front door: dynamic batching vs per-query dispatch",
        "mode": mode,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "dataset": {
            "kind": "sift_like",
            "num_vectors": scale["num_vectors"],
            "dim": dataset.vectors.shape[1],
            "num_clusters": scale["num_clusters"],
            "k": K,
            "ef_search": EF_SEARCH,
            "seed": 42,
        },
        "workload": {
            "steady_rate_qps": STEADY_RATE_QPS,
            "saturation_rate_qps": SATURATION_RATE_QPS,
            "steady_requests": scale["steady_requests"],
            "saturation_requests": scale["saturation_requests"],
            "tenants": list(TENANTS),
            "arrival_seed": 7,
        },
        "build_seconds": round(build_seconds, 1),
        "sections": sections,
        "acceptance": acceptance,
    }

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({"sections": sections, "acceptance": acceptance},
                     indent=2))
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
